//! System construction: design wiring and interned build artifacts.
//!
//! Everything that turns a [`RunConfig`] into a runnable [`System`]
//! lives here — the per-design L1 instantiation ([`build_l1`]), the
//! memory-image builder (fragmented physical memory + THP-populated
//! address space), and the process-wide artifact caches that let figure
//! grids re-derive shared state with an `Arc` clone instead of a
//! rebuild. The run/step path stays in [`crate::system`]; the two halves
//! meet at the [`System`] struct's `pub(crate)` fields.

use seesaw_cache::{CacheConfig, IndexPolicy, OuterHierarchy, OuterHierarchyConfig};
use seesaw_check::{FaultConfig, FaultInjector, ShadowChecker};
use seesaw_coherence::{
    CoherenceMode, CoherenceTraffic, CoherenceTrafficConfig, DirectoryController,
};
use seesaw_core::{
    BaselineL1, L1Timing, MicroTagConfig, MicroTagL1, SchedulerHint, SeesawConfig, SeesawL1,
    VespaConfig, VespaL1, VivtL1,
};
use seesaw_energy::{EnergyAccount, EnergyModel, SramModel};
use seesaw_mem::{
    AddressSpace, Memhog, MemhogConfig, PhysicalMemory, ThpPolicy, Vma,
};
use seesaw_tlb::{TlbHierarchy, TlbHierarchyConfig};
use seesaw_workloads::TraceGenerator;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::core::{Core, L1Flavor, TranslationIntern};
use crate::system::System;
use crate::uncore::Uncore;
use crate::{CpuKind, L1DesignKind, ProbeSource, RunConfig, SimError};

/// Weyl increment: decorrelates per-core seeds while leaving core 0 on
/// the run's base seed, so `cores = 1` replays the single-core stream
/// bit-for-bit.
const CORE_SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// One L1 instance plus the timing facts the run loop needs about it.
pub(crate) struct L1Build {
    pub l1: L1Flavor,
    pub timing: L1Timing,
    pub total_ways: usize,
    pub serializes: bool,
    /// Ways one coherence probe reads in this design (SEESAW and VESPA
    /// probe a single partition, §IV-C1; everything else reads the full
    /// set).
    pub probe_ways: usize,
}

/// Builds one L1 instance of the configured design.
pub(crate) fn build_l1(config: &RunConfig, sram: &SramModel) -> L1Build {
    let ghz = config.frequency.ghz();
    let size_kb = config.l1_size_kb;
    let baseline_ways = config.baseline_ways();
    match config.design {
        L1DesignKind::BaselineVipt | L1DesignKind::BaselineWithWayPrediction => {
            let slow = sram.full_lookup_cycles(size_kb, baseline_ways, ghz);
            let timing = L1Timing {
                fast_cycles: slow,
                slow_cycles: slow,
            };
            let cache = CacheConfig::new(size_kb << 10, baseline_ways, 64, IndexPolicy::Vipt);
            let wp = config.design == L1DesignKind::BaselineWithWayPrediction;
            L1Build {
                l1: L1Flavor::Baseline(BaselineL1::new(cache, timing, wp)),
                timing,
                total_ways: baseline_ways,
                serializes: false,
                probe_ways: baseline_ways,
            }
        }
        L1DesignKind::Seesaw | L1DesignKind::SeesawWithWayPrediction => {
            let mut seesaw_cfg = SeesawConfig::with_size_kb(size_kb)
                .with_tft_entries(config.tft_entries)
                .with_insertion(config.insertion);
            if let Some(partitions) = config.seesaw_partitions {
                seesaw_cfg = seesaw_cfg.with_partitions(partitions);
            }
            if config.design == L1DesignKind::SeesawWithWayPrediction {
                seesaw_cfg = seesaw_cfg.with_way_prediction();
            }
            let timing = L1Timing {
                fast_cycles: sram.partition_lookup_cycles(
                    size_kb,
                    baseline_ways,
                    seesaw_cfg.partitions,
                    ghz,
                ),
                slow_cycles: sram.full_lookup_cycles(size_kb, baseline_ways, ghz),
            };
            let probe_ways = (baseline_ways / seesaw_cfg.partitions).max(1);
            L1Build {
                l1: L1Flavor::Seesaw(Box::new(SeesawL1::new(seesaw_cfg, timing))),
                timing,
                total_ways: baseline_ways,
                serializes: false,
                probe_ways,
            }
        }
        L1DesignKind::Pipt { ways } => {
            let slow = sram.full_lookup_cycles(size_kb, ways, ghz);
            let timing = L1Timing {
                fast_cycles: slow,
                slow_cycles: slow,
            };
            let cache = CacheConfig::new(size_kb << 10, ways, 64, IndexPolicy::Pipt);
            L1Build {
                l1: L1Flavor::Baseline(BaselineL1::new(cache, timing, false)),
                timing,
                total_ways: ways,
                serializes: true,
                probe_ways: ways,
            }
        }
        L1DesignKind::Vivt { ways } => {
            let fast = sram.full_lookup_cycles(size_kb, ways, ghz);
            let timing = L1Timing {
                fast_cycles: fast,
                // The slow path is a synonym remap: two probe rounds.
                slow_cycles: fast * 2,
            };
            L1Build {
                l1: L1Flavor::Vivt(Box::new(VivtL1::new(size_kb << 10, ways, timing))),
                timing,
                total_ways: ways,
                serializes: false,
                probe_ways: ways,
            }
        }
        L1DesignKind::Vespa => {
            // SEESAW's geometry and timing menu, minus the TFT: the fast
            // narrow probe launches unconditionally, so the TFT-entry knob
            // is irrelevant but the partition override still applies.
            let mut vespa_cfg = VespaConfig::with_size_kb(size_kb);
            vespa_cfg.insertion = config.insertion;
            if let Some(partitions) = config.seesaw_partitions {
                vespa_cfg.partitions = partitions;
            }
            let timing = L1Timing {
                fast_cycles: sram.partition_lookup_cycles(
                    size_kb,
                    baseline_ways,
                    vespa_cfg.partitions,
                    ghz,
                ),
                slow_cycles: sram.full_lookup_cycles(size_kb, baseline_ways, ghz),
            };
            let probe_ways = (baseline_ways / vespa_cfg.partitions).max(1);
            L1Build {
                l1: L1Flavor::Vespa(Box::new(VespaL1::new(vespa_cfg, timing))),
                timing,
                total_ways: baseline_ways,
                serializes: false,
                probe_ways,
            }
        }
        L1DesignKind::BaselineMicroTag => {
            let slow = sram.full_lookup_cycles(size_kb, baseline_ways, ghz);
            let timing = L1Timing {
                fast_cycles: slow,
                slow_cycles: slow,
            };
            let cache = CacheConfig::new(size_kb << 10, baseline_ways, 64, IndexPolicy::Vipt);
            // The chaos knob models hardware that serves a µtag match
            // without verifying the physical tag — the bug the checker's
            // way-prediction-alias invariant exists to catch.
            let verify = !config
                .faults
                .map(|f| f.chaos.skip_way_verification)
                .unwrap_or(false);
            let utag_cfg = if verify {
                MicroTagConfig::new(cache)
            } else {
                MicroTagConfig::new(cache).without_verification()
            };
            L1Build {
                l1: L1Flavor::MicroTag(Box::new(MicroTagL1::new(utag_cfg, timing))),
                timing,
                total_ways: baseline_ways,
                serializes: false,
                probe_ways: baseline_ways,
            }
        }
    }
}

/// The memory half of a built system: fragmented physical memory, the
/// populated address space, and the workload VMA. Everything here is a
/// pure function of `(workload, seed, memhog_percent)`, while a figure
/// grid re-derives it for every L1 size × frequency × design cell — so
/// built images are interned process-wide and cells start from a clone.
/// Determinism makes the clone sound: it is bit-for-bit the state a
/// fresh build would produce.
#[derive(Clone)]
pub(crate) struct MemoryImage {
    pub pmem: PhysicalMemory,
    pub space: AddressSpace,
    pub vma: Vma,
}

/// Cache key covering every input of [`build_memory_image`]: the full
/// workload spec (every mixture parameter participates via `Debug`,
/// mirroring the runner's config fingerprints), the seed, and the
/// memhog pressure.
pub(crate) fn memory_image_key(config: &RunConfig) -> String {
    format!(
        "{:?}|{}|{}",
        config.workload, config.seed, config.memhog_percent
    )
}

/// Entry caps for the process-wide artifact caches. Eviction is a full
/// clear — crude, but any eviction policy is correct (entries are pure
/// functions of their keys) and sweeps revisit at most a catalog of
/// workloads times a handful of frequencies before moving on.
const MEMORY_IMAGE_CAP: usize = 32;
pub(crate) const STREAM_CACHE_CAP: usize = 32;
pub(crate) const WARM_OUTER_CAP: usize = 24;

fn memory_images() -> &'static Mutex<HashMap<String, MemoryImage>> {
    static CACHE: OnceLock<Mutex<HashMap<String, MemoryImage>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A recorded reference stream: the packed references plus the
/// generator state advanced past them, so a run that hits skips every
/// RNG draw and `ln()` of stream synthesis and still continues the
/// stream seamlessly if it ever outruns the recording.
#[derive(Clone)]
pub(crate) struct StreamArtifact {
    pub refs: Arc<[u64]>,
    pub generator: TraceGenerator,
}

pub(crate) fn stream_cache() -> &'static Mutex<HashMap<String, StreamArtifact>> {
    static CACHE: OnceLock<Mutex<HashMap<String, StreamArtifact>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Prewarmed outer hierarchies (L2 + LLC + prefetcher state after the
/// functional prewarm), keyed by everything the prewarm traffic depends
/// on: the memory image (translations), core count, reference count,
/// frequency (outer timing config), and prefetch degree. L1 geometry
/// and design are deliberately absent — prewarm bypasses the L1, which
/// is what makes one warmed image servable to every design cell of a
/// figure row.
pub(crate) fn warm_outer_cache() -> &'static Mutex<HashMap<String, OuterHierarchy>> {
    static CACHE: OnceLock<Mutex<HashMap<String, OuterHierarchy>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Interned [`build_memory_image`]: clones a cached image when one
/// matches, builds and caches otherwise. Build failures propagate
/// uncached (they would recur identically, but they also carry context
/// a caller wants fresh).
fn memory_image(config: &RunConfig) -> Result<MemoryImage, SimError> {
    let key = memory_image_key(config);
    if let Some(img) = memory_images().lock().expect("memory image lock").get(&key) {
        return Ok(img.clone());
    }
    let img = build_memory_image(config)?;
    let mut cache = memory_images().lock().expect("memory image lock");
    if cache.len() >= MEMORY_IMAGE_CAP {
        cache.clear();
    }
    cache.insert(key, img.clone());
    Ok(img)
}

/// Builds the memory half of a system: physical memory fragmented by a
/// light system-noise allocator plus the configured memhog, then the
/// workload's footprint populated through the THP policy — so superpage
/// coverage emerges from the OS model, as on the paper's long-uptime
/// servers (§III-C, §V).
fn build_memory_image(config: &RunConfig) -> Result<MemoryImage, SimError> {
    let footprint = config.workload.footprint_bytes();
    // Physical memory is provisioned at 4x the footprint (min 128 MB):
    // like the paper's loaded servers, the workload is a substantial
    // fraction of memory, so memhog pressure actually bites.
    let pmem_bytes = (footprint * 4).max(128 << 20);
    let mut pmem = PhysicalMemory::new(pmem_bytes);

    // Long-uptime system noise: a thin layer of scattered allocations,
    // some pinned (kernel/network stack), always present.
    let mut noise = Memhog::new(MemhogConfig {
        fraction: 0.04,
        unmovable_fraction: 0.10,
        churn_factor: 0.1,
        seed: config.seed ^ 0x1105e,
    });
    noise.run(&mut pmem);

    // The co-running memhog at the configured pressure, clamped so the
    // workload's footprint still fits (the paper's real system would
    // swap; we don't model swap).
    let requested = f64::from(config.memhog_percent.min(95)) / 100.0;
    let max_fraction =
        (pmem.free_bytes() as f64 - 1.3 * footprint as f64) / pmem.total_bytes() as f64;
    let mut hog = Memhog::new(MemhogConfig {
        fraction: requested.min(max_fraction.max(0.0)),
        seed: config.seed ^ 0x109,
        ..MemhogConfig::default()
    });
    hog.run(&mut pmem);

    // Populate the workload's heap through transparent huge pages.
    let mut space = AddressSpace::new(1);
    let vma = space
        .mmap_anonymous(&mut pmem, footprint, ThpPolicy::Always)
        .map_err(|source| SimError::Mem {
            context: "populating the workload footprint",
            source,
        })?;
    // Compaction during population may have migrated hog-owned blocks.
    let relocations = space.drain_foreign_relocations();
    hog.absorb_relocations(&relocations);
    noise.absorb_relocations(&relocations);
    space.drain_ops(); // initial mappings carry no stale state

    Ok(MemoryImage { pmem, space, vma })
}

impl System {
    /// Builds the system: physical memory is fragmented by a light
    /// system-noise allocator plus the configured memhog before the
    /// workload's footprint is populated through the THP policy — so
    /// superpage coverage emerges from the OS model, as on the paper's
    /// long-uptime servers (§III-C, §V).
    ///
    /// With [`RunConfig::cores`] > 1, N identical cores are built, each
    /// with its own TLBs, L1, and independently-seeded workload stream
    /// (all threads of one process: the address space is shared), and —
    /// under [`ProbeSource::Coherence`] — a functional MOESI directory
    /// (or snoopy bus, per [`RunConfig::snoopy`]) generates every
    /// coherence probe from real peer misses and upgrades.
    ///
    /// # Errors
    /// Returns [`SimError::Mem`] if physical memory cannot back the
    /// workload's footprint even with base pages (the THP path already
    /// degrades superpage failures to 4 KB fallback, counted in
    /// [`crate::RunResult::demotions`]).
    pub fn build(config: &RunConfig) -> Result<System, SimError> {
        let MemoryImage { pmem, space, vma } = memory_image(config)?;
        let sram = SramModel::tsmc28_scaled_22nm();
        let n = config.cores.max(1);
        let mut cores = Vec::with_capacity(n);
        let mut timing = L1Timing {
            fast_cycles: 0,
            slow_cycles: 0,
        };
        let mut total_ways = 0;
        let mut serializes = false;
        let mut probe_ways = 1;
        for id in 0..n {
            let built = build_l1(config, &sram);
            timing = built.timing;
            total_ways = built.total_ways;
            serializes = built.serializes;
            probe_ways = built.probe_ways;
            // Each core streams its own workload instance, decorrelated
            // by a Weyl stride; core 0 keeps the run's base seed so the
            // single-core stream is unchanged by the refactor.
            let lane = (id as u64).wrapping_mul(CORE_SEED_STRIDE);
            // Synthetic probe stream only when no directory generates the
            // real thing; snoopy protocols broadcast, multiplying
            // delivered probes (§VI-B).
            let traffic = (config.probe_source == ProbeSource::Synthetic).then(|| {
                let snoop_factor = if config.snoopy { 3.0 } else { 1.0 };
                CoherenceTraffic::new(CoherenceTrafficConfig {
                    probes_per_kilo_instruction: config.workload.coherence_pki * snoop_factor,
                    invalidate_fraction: 0.3,
                    targeted_fraction: 0.6,
                    seed: config.seed ^ 0xc0c0 ^ lane,
                })
            });
            cores.push(Core {
                id,
                tlbs: TlbHierarchy::new(Self::tlb_config(config)),
                l1: built.l1,
                generator: TraceGenerator::new(&config.workload, config.seed ^ lane),
                hint: SchedulerHint::default(),
                traffic,
                checker: config.checker.then(ShadowChecker::new),
                injector: config.faults.map(|f| {
                    let per_core = FaultConfig {
                        seed: f.seed ^ lane,
                        ..f
                    };
                    // An explicit schedule for this core (shrinker replay)
                    // supersedes the seeded stream; missing entries keep it.
                    match config
                        .fault_schedules
                        .as_ref()
                        .and_then(|s| s.get(id))
                    {
                        Some(schedule) => FaultInjector::replay(per_core, schedule.clone()),
                        None => FaultInjector::new(per_core),
                    }
                }),
                elapsed: 0,
                xlate: TranslationIntern::new(vma.base().raw(), vma.bytes()),
                replay: Arc::from(Vec::new()),
                replay_cursor: 0,
            });
        }

        // The real coherence substrate: a functional model of every
        // core's L1 tag state under MOESI, sized like the timing L1s,
        // probing one partition per delivery for SEESAW designs.
        let coherence = (config.probe_source == ProbeSource::Coherence).then(|| {
            let geometry =
                CacheConfig::new(config.l1_size_kb << 10, total_ways, 64, IndexPolicy::Vipt);
            let mode = if config.snoopy {
                CoherenceMode::Snoopy
            } else {
                CoherenceMode::Directory
            };
            DirectoryController::new(n, geometry, mode, probe_ways)
        });

        let outer_cfg = OuterHierarchyConfig::table_ii(config.frequency.ghz());
        let outer = match config.prefetch_degree {
            Some(degree) => OuterHierarchy::with_prefetcher(outer_cfg, degree),
            None => OuterHierarchy::new(outer_cfg),
        };
        let account = EnergyAccount::new(EnergyModel::new(sram), config.l1_size_kb, total_ways);

        Ok(System {
            config: config.clone(),
            timing,
            serializes_translation: serializes,
            cores,
            uncore: Uncore {
                pmem,
                space,
                vma,
                outer,
                account,
                coherence,
                pressure_hogs: Vec::new(),
                run_demotions: 0,
            },
        })
    }

    pub(crate) fn tlb_config(config: &RunConfig) -> TlbHierarchyConfig {
        let mut tlb = match config.cpu {
            CpuKind::InOrder => TlbHierarchyConfig::atom(),
            CpuKind::OutOfOrder => TlbHierarchyConfig::sandybridge(),
        };
        if let Some(entries) = config.l1_tlb_4k_entries {
            tlb = tlb.with_l1_4k_entries(entries);
        }
        tlb
    }
}
