//! The per-core slice of the system: everything a core owns privately.
//!
//! A [`Core`] bundles the CPU-side hardware (TLB hierarchy, the L1
//! design under test with its TFT, the scheduler-hint state) with the
//! core's private software context (its workload stream, shadow
//! checker, fault injector, and synthetic probe source). The shared
//! machine — physical memory, the outer hierarchy, the directory — is
//! [`crate::uncore::Uncore`]; the interleaved run loop in
//! [`crate::System`] drives N of these against one uncore.

use seesaw_check::{FaultInjector, ShadowChecker};
use seesaw_coherence::CoherenceTraffic;
use seesaw_core::{BaselineL1, L1DataCache, SchedulerHint, SeesawL1, VivtL1};
use seesaw_mem::{AddressSpace, PhysAddr, Translation, VirtAddr};
use seesaw_tlb::TlbHierarchy;
use seesaw_workloads::TraceGenerator;

/// The L1 design under test, unified for the run loop.
#[allow(clippy::large_enum_variant)]
pub(crate) enum L1Flavor {
    Baseline(BaselineL1),
    Seesaw(Box<SeesawL1>),
    Vivt(Box<VivtL1>),
}

impl L1Flavor {
    pub(crate) fn as_dyn(&mut self) -> &mut dyn L1DataCache {
        match self {
            L1Flavor::Baseline(l1) => l1,
            L1Flavor::Seesaw(l1) => l1.as_mut(),
            L1Flavor::Vivt(l1) => l1.as_mut(),
        }
    }

    pub(crate) fn seesaw(&mut self) -> Option<&mut SeesawL1> {
        match self {
            L1Flavor::Seesaw(l1) => Some(l1),
            _ => None,
        }
    }

    pub(crate) fn is_vivt(&self) -> bool {
        matches!(self, L1Flavor::Vivt(_))
    }
}

/// One simulated core. All cores of a run are threads of the same
/// process: they share the address space and outer hierarchy held by
/// the uncore, but each owns its TLBs, its L1 (and TFT), its workload
/// stream, and — when enabled — its own shadow checker and fault
/// injector, each independently seeded so N-core runs stay
/// deterministic under the round-robin interleave.
pub(crate) struct Core {
    /// Core index (also the directory's requester id).
    pub id: usize,
    pub tlbs: TlbHierarchy,
    pub l1: L1Flavor,
    pub generator: TraceGenerator,
    pub hint: SchedulerHint,
    /// Synthetic probe stream ([`crate::ProbeSource::Synthetic`] only);
    /// `None` when a real directory generates every probe.
    pub traffic: Option<CoherenceTraffic>,
    /// Differential shadow model, when [`crate::RunConfig::checker`] is set.
    pub checker: Option<ShadowChecker>,
    /// Seeded fault source, when [`crate::RunConfig::faults`] is set.
    pub injector: Option<FaultInjector>,
    /// Instructions executed across every interleave() call, so injector
    /// schedules and checker diagnostics span warmup + measurement.
    pub elapsed: u64,
    /// One-entry last-translation micro-cache in front of
    /// `space.translate`: the prewarm replay and the per-access shadow
    /// check walk the same page for many consecutive references, so one
    /// remembered page-table entry short-circuits the page-table's
    /// BTreeMap probes. Invalidated on *every* page-table mutation path
    /// (splinters, promotions, shootdowns, memory pressure) — on every
    /// core, since the address space is shared — so the differential
    /// checker still compares against ground truth.
    pub last_translation: Option<Translation>,
}

impl Core {
    /// Translates `va` through the one-entry last-translation micro-cache.
    ///
    /// Workload traces have strong page locality, so consecutive
    /// references usually land in the page the previous one resolved;
    /// when they do, the physical address is synthesized from the cached
    /// [`Translation`] without walking the page-table maps. The cached
    /// entry is dropped on every page-table mutation so the answer is
    /// always what `space.translate` would return — the shadow checker
    /// compares against exactly this value.
    #[inline]
    pub fn translate_cached(&mut self, space: &AddressSpace, va: VirtAddr) -> Option<Translation> {
        if let Some(t) = self.last_translation {
            let base = t.vpage.base().raw();
            if va.raw().wrapping_sub(base) < t.vpage.size().bytes() {
                return Some(Translation {
                    pa: PhysAddr::new(t.frame.base().raw() + (va.raw() - base)),
                    ..t
                });
            }
        }
        let t = space.translate(va)?;
        self.last_translation = Some(t);
        Some(t)
    }
}
