//! The per-core slice of the system: everything a core owns privately.
//!
//! A [`Core`] bundles the CPU-side hardware (TLB hierarchy, the L1
//! design under test with its TFT, the scheduler-hint state) with the
//! core's private software context (its workload stream, shadow
//! checker, fault injector, and synthetic probe source). The shared
//! machine — physical memory, the outer hierarchy, the directory — is
//! [`crate::uncore::Uncore`]; the interleaved run loop in
//! [`crate::System`] drives N of these against one uncore.

use std::sync::Arc;

use seesaw_cache::WayPredictionStats;
use seesaw_check::{FaultInjector, ShadowChecker};
use seesaw_coherence::CoherenceTraffic;
use seesaw_core::{BaselineL1, L1DataCache, MicroTagL1, SchedulerHint, SeesawL1, VespaL1, VivtL1};
use seesaw_mem::{AddressSpace, PhysAddr, Translation, VirtAddr};
use seesaw_tlb::TlbHierarchy;
use seesaw_workloads::{TraceGenerator, TraceRef};

/// The L1 design under test, unified for the run loop.
#[allow(clippy::large_enum_variant)]
pub(crate) enum L1Flavor {
    Baseline(BaselineL1),
    Seesaw(Box<SeesawL1>),
    Vivt(Box<VivtL1>),
    Vespa(Box<VespaL1>),
    MicroTag(Box<MicroTagL1>),
}

impl L1Flavor {
    pub(crate) fn as_dyn(&mut self) -> &mut dyn L1DataCache {
        match self {
            L1Flavor::Baseline(l1) => l1,
            L1Flavor::Seesaw(l1) => l1.as_mut(),
            L1Flavor::Vivt(l1) => l1.as_mut(),
            L1Flavor::Vespa(l1) => l1.as_mut(),
            L1Flavor::MicroTag(l1) => l1.as_mut(),
        }
    }

    pub(crate) fn seesaw(&mut self) -> Option<&mut SeesawL1> {
        match self {
            L1Flavor::Seesaw(l1) => Some(l1),
            _ => None,
        }
    }

    pub(crate) fn is_vivt(&self) -> bool {
        matches!(self, L1Flavor::Vivt(_))
    }

    /// Way-predictor counters of whichever predictor the design carries
    /// (MRU for baseline/SEESAW `*WithWayPrediction`, the µtag for
    /// [`L1Flavor::MicroTag`]); `None` when the design has none.
    pub(crate) fn way_prediction_stats(&self) -> Option<WayPredictionStats> {
        match self {
            L1Flavor::Baseline(l1) => l1.way_prediction_stats(),
            L1Flavor::Seesaw(l1) => l1.way_prediction_stats(),
            L1Flavor::MicroTag(l1) => Some(l1.way_prediction_stats()),
            L1Flavor::Vivt(_) | L1Flavor::Vespa(_) => None,
        }
    }
}

/// One simulated core. All cores of a run are threads of the same
/// process: they share the address space and outer hierarchy held by
/// the uncore, but each owns its TLBs, its L1 (and TFT), its workload
/// stream, and — when enabled — its own shadow checker and fault
/// injector, each independently seeded so N-core runs stay
/// deterministic under the round-robin interleave.
pub(crate) struct Core {
    /// Core index (also the directory's requester id).
    pub id: usize,
    pub tlbs: TlbHierarchy,
    pub l1: L1Flavor,
    pub generator: TraceGenerator,
    pub hint: SchedulerHint,
    /// Synthetic probe stream ([`crate::ProbeSource::Synthetic`] only);
    /// `None` when a real directory generates every probe.
    pub traffic: Option<CoherenceTraffic>,
    /// Differential shadow model, when [`crate::RunConfig::checker`] is set.
    pub checker: Option<ShadowChecker>,
    /// Seeded fault source, when [`crate::RunConfig::faults`] is set.
    pub injector: Option<FaultInjector>,
    /// Instructions executed across every interleave() call, so injector
    /// schedules and checker diagnostics span warmup + measurement.
    pub elapsed: u64,
    /// Interned page-table-walk results in front of `space.translate`:
    /// one slot per 4 KB page of the workload VMA, so the prewarm replay
    /// and the per-access shadow check resolve a translation with a
    /// single indexed load instead of walking the page-table's BTreeMap.
    /// Invalidated on *every* page-table mutation path (splinters,
    /// promotions, shootdowns, memory pressure) — on every core, since
    /// the address space is shared — so the differential checker still
    /// compares against ground truth.
    pub xlate: TranslationIntern,
    /// References generated once during the functional prewarm (packed,
    /// [`TraceRef::pack`], and shared process-wide across runs of the
    /// same workload stream) and replayed by the warmup + measured
    /// loops, so the mixture-model generator (several RNG draws and an
    /// `ln()` per reference) runs once per stream instead of once per
    /// run phase. The stream past the buffer continues from `generator`,
    /// whose state sits exactly at the first unbuffered reference.
    pub replay: Arc<[u64]>,
    pub replay_cursor: usize,
}

impl Core {
    /// Next reference of this core's stream: the prewarm-recorded buffer
    /// first, then the live generator (positioned immediately after the
    /// buffered prefix, so the spliced stream is the generator's own).
    #[inline]
    pub fn next_ref(&mut self) -> TraceRef {
        if let Some(&word) = self.replay.get(self.replay_cursor) {
            self.replay_cursor += 1;
            TraceRef::unpack(word)
        } else {
            self.generator.next_ref()
        }
    }

    /// Translates `va` through the interned-translation table.
    ///
    /// A hit synthesizes the physical address from the interned
    /// [`Translation`] without touching the page-table maps. Entries are
    /// dropped on every page-table mutation so the answer is always what
    /// `space.translate` would return — the shadow checker compares
    /// against exactly this value.
    #[inline]
    pub fn translate_cached(&mut self, space: &AddressSpace, va: VirtAddr) -> Option<Translation> {
        let idx = (va.raw().wrapping_sub(self.xlate.base) >> 21) as usize;
        if let Some(slot) = self.xlate.slots.get_mut(idx) {
            if slot.0 == self.xlate.gen {
                if let Some(t) = slot.1 {
                    let base = t.vpage.base().raw();
                    if va.raw().wrapping_sub(base) < t.vpage.size().bytes() {
                        return Some(Translation {
                            pa: PhysAddr::new(t.frame.base().raw() + (va.raw() - base)),
                            ..t
                        });
                    }
                }
            }
            let t = space.translate(va)?;
            *slot = (self.xlate.gen, Some(t));
            Some(t)
        } else {
            space.translate(va)
        }
    }
}

/// Per-core interned translations: one slot per 2 MB region of the
/// workload VMA. A superpage-backed region (the common case under
/// `ThpPolicy::Always`) is covered by its slot outright; a splintered
/// region degrades to a per-region last-translation entry, still hit by
/// the page-local runs the generator emits. A slot is live only while
/// its generation stamp matches the table's current generation, so
/// invalidation (which must cover the whole table — any page-table
/// reshape can move any page) is a single counter bump instead of a
/// clear, and the table costs one cache line per 2 MB of footprint.
pub(crate) struct TranslationIntern {
    /// VA of the workload VMA's first byte; slot index is
    /// `(va - base) >> 21`.
    base: u64,
    /// Current generation; bumped by [`TranslationIntern::invalidate`].
    gen: u64,
    /// Per-slot `(generation, translation)` (generation 0 = never
    /// filled; `gen` starts at 1).
    slots: Vec<(u64, Option<Translation>)>,
}

impl TranslationIntern {
    pub(crate) fn new(vma_base: u64, vma_bytes: u64) -> Self {
        let regions = vma_bytes.div_ceil(2 << 20) as usize;
        Self {
            base: vma_base,
            gen: 1,
            slots: vec![(0, None); regions],
        }
    }

    /// Drops every interned entry (O(1): stamps go stale, not zeroed).
    #[inline]
    pub(crate) fn invalidate(&mut self) {
        self.gen += 1;
    }
}
