//! Terminal bar charts for the figure binaries.
//!
//! The paper's evaluation figures are bar charts; rendering the same
//! series as horizontal ASCII bars makes the *shape* — who wins, by
//! roughly what factor, where the crossovers fall — visible at a glance
//! in the binaries' output, alongside the exact numbers in the tables.

use std::fmt;

/// A horizontal bar chart.
///
/// # Example
/// ```
/// use seesaw_sim::BarChart;
/// let mut chart = BarChart::new("runtime improvement", "%");
/// chart.bar("redis", 7.2);
/// chart.bar("astar", 4.1);
/// let s = chart.to_string();
/// assert!(s.contains("redis"));
/// assert!(s.contains('█'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    unit: String,
    bars: Vec<(String, f64)>,
    width: usize,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new<S: Into<String>, U: Into<String>>(title: S, unit: U) -> Self {
        Self {
            title: title.into(),
            unit: unit.into(),
            bars: Vec::new(),
            width: 46,
        }
    }

    /// Appends a bar.
    pub fn bar<S: Into<String>>(&mut self, label: S, value: f64) {
        self.bars.push((label.into(), value));
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True when no bars have been added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({})", self.title, self.unit)?;
        if self.bars.is_empty() {
            return writeln!(f, "  (no data)");
        }
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|&(_, v)| v.abs())
            .fold(f64::EPSILON, f64::max);
        for (label, value) in &self.bars {
            let cells = ((value.abs() / max) * self.width as f64).round() as usize;
            let bar: String = std::iter::repeat_n('█', cells).collect();
            let sign = if *value < 0.0 { "-" } else { " " };
            writeln!(f, "  {label:>label_w$} {sign}{bar:<w$} {value:>8.2}", w = self.width)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let mut chart = BarChart::new("t", "%");
        chart.bar("big", 10.0);
        chart.bar("half", 5.0);
        let s = chart.to_string();
        let big_cells = s.lines().nth(1).unwrap().matches('█').count();
        let half_cells = s.lines().nth(2).unwrap().matches('█').count();
        assert_eq!(big_cells, 46);
        assert_eq!(half_cells, 23);
    }

    #[test]
    fn negative_values_are_marked() {
        let mut chart = BarChart::new("t", "%");
        chart.bar("loss", -3.0);
        chart.bar("gain", 6.0);
        let s = chart.to_string();
        assert!(s.lines().nth(1).unwrap().contains(" -"));
        assert_eq!(chart.len(), 2);
        assert!(!chart.is_empty());
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let chart = BarChart::new("nothing", "u");
        assert!(chart.to_string().contains("(no data)"));
    }
}
