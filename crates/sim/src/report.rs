//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
/// ```
/// use seesaw_sim::Table;
/// let mut t = Table::new(vec!["workload", "improvement"]);
/// t.row(vec!["redis".into(), "7.2%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("redis"));
/// assert!(s.contains("improvement"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float as a percent cell.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Formats a float with two decimals.
pub fn num(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(7.25), "7.25%");
        assert_eq!(num(1.5), "1.50");
    }
}
