//! Typed simulation errors.
//!
//! `System::build` and `System::run` used to panic (via `expect`) on
//! allocation failure and unmapped accesses. They now return `SimError`,
//! so drivers can degrade gracefully — fall back to smaller
//! configurations, report the failing run and continue a sweep — and so
//! the differential checker can surface an invariant [`Violation`] as an
//! ordinary error value instead of a crash.

use seesaw_check::Violation;
use seesaw_mem::MemError;

/// Why a simulation could not be built or completed.
///
/// `Clone` so the runner's memo cache can record failures the same way it
/// records results: a deterministic config that fails once fails
/// identically every time, and the shrinker's delta-debugging candidates
/// (which fail by design) would otherwise be re-simulated on every
/// recurrence.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Physical memory could not satisfy an allocation the run needs
    /// (after graceful degradation was already attempted).
    Mem {
        /// What the simulator was doing when the allocation failed.
        context: &'static str,
        /// The underlying allocator error.
        source: MemError,
    },
    /// A generated reference touched an unmapped virtual address — a bug
    /// in the workload model or a fault-injection unmap gone wrong.
    PageFault {
        /// The faulting virtual address.
        va: u64,
    },
    /// The differential shadow checker caught an invariant violation.
    /// Boxed because the diagnostic carries the event history.
    Check(Box<Violation>),
    /// The cell's simulation panicked and the supervisor isolated it
    /// (`catch_unwind`): the sweep survives, this cell reports the panic.
    Panic {
        /// Label of the plan cell that panicked.
        cell: String,
        /// Short content digest of the cell's configuration fingerprint
        /// (the store's record name), so the failing config can be found
        /// without replaying the whole plan.
        fingerprint: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The supervisor's watchdog expired before the cell finished
    /// (simulation or store write-back wedged past the configured
    /// per-cell wall-clock budget).
    Timeout {
        /// Label of the plan cell that timed out.
        cell: String,
        /// The wall-clock budget that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// The sweep's failure budget ([`crate::SweepPolicy::max_failures`])
    /// was already exhausted, so this cell was never started.
    Skipped {
        /// Label of the plan cell that was skipped.
        cell: String,
    },
}

impl SimError {
    /// Whether a supervised runner should retry this failure.
    ///
    /// Simulations are pure functions of their configuration, so every
    /// simulation-level error ([`SimError::Mem`], [`SimError::PageFault`],
    /// [`SimError::Check`]) recurs identically on a retry — those are
    /// *permanent*. Only harness-level failures are *transient*: a panic
    /// may come from an exhausted resource, and a timeout from a loaded
    /// machine or a wedged store write-back, so both earn the supervisor's
    /// capped backoff-and-retry treatment.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SimError::Panic { .. } | SimError::Timeout { .. })
    }

    /// The inverse of [`SimError::is_retryable`]: retrying cannot help.
    pub fn is_permanent(&self) -> bool {
        !self.is_retryable()
    }

    /// The autosaved repro-bundle path, when this is a checker violation
    /// that was persisted under `SEESAW_REPRO` (see
    /// [`Violation::autosaved`]).
    pub fn bundle_path(&self) -> Option<&std::path::Path> {
        match self {
            SimError::Check(v) => v.autosaved.as_deref(),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Mem { context, source } => {
                write!(f, "memory allocation failed while {context}: {source}")
            }
            SimError::PageFault { va } => {
                write!(f, "simulated page fault: va {va:#x} is not mapped")
            }
            SimError::Check(violation) => write!(f, "{violation}"),
            SimError::Panic {
                cell,
                fingerprint,
                message,
            } => write!(
                f,
                "cell {cell:?} (config {fingerprint}) panicked: {message}"
            ),
            SimError::Timeout { cell, timeout_ms } => {
                write!(f, "cell {cell:?} exceeded its {timeout_ms} ms watchdog")
            }
            SimError::Skipped { cell } => {
                write!(f, "cell {cell:?} skipped: sweep failure budget exhausted")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<Violation> for SimError {
    fn from(violation: Violation) -> Self {
        SimError::Check(Box::new(violation))
    }
}
