//! Typed simulation errors.
//!
//! `System::build` and `System::run` used to panic (via `expect`) on
//! allocation failure and unmapped accesses. They now return `SimError`,
//! so drivers can degrade gracefully — fall back to smaller
//! configurations, report the failing run and continue a sweep — and so
//! the differential checker can surface an invariant [`Violation`] as an
//! ordinary error value instead of a crash.

use seesaw_check::Violation;
use seesaw_mem::MemError;

/// Why a simulation could not be built or completed.
///
/// `Clone` so the runner's memo cache can record failures the same way it
/// records results: a deterministic config that fails once fails
/// identically every time, and the shrinker's delta-debugging candidates
/// (which fail by design) would otherwise be re-simulated on every
/// recurrence.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Physical memory could not satisfy an allocation the run needs
    /// (after graceful degradation was already attempted).
    Mem {
        /// What the simulator was doing when the allocation failed.
        context: &'static str,
        /// The underlying allocator error.
        source: MemError,
    },
    /// A generated reference touched an unmapped virtual address — a bug
    /// in the workload model or a fault-injection unmap gone wrong.
    PageFault {
        /// The faulting virtual address.
        va: u64,
    },
    /// The differential shadow checker caught an invariant violation.
    /// Boxed because the diagnostic carries the event history.
    Check(Box<Violation>),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Mem { context, source } => {
                write!(f, "memory allocation failed while {context}: {source}")
            }
            SimError::PageFault { va } => {
                write!(f, "simulated page fault: va {va:#x} is not mapped")
            }
            SimError::Check(violation) => write!(f, "{violation}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<Violation> for SimError {
    fn from(violation: Violation) -> Self {
        SimError::Check(Box::new(violation))
    }
}
