//! Full-system assembly: N cores (TLBs + L1 design + workload stream)
//! round-robin interleaved against one uncore (OS + outer hierarchy +
//! coherence + energy), driven by the CPU timing models.

use seesaw_cache::{
    CacheConfig, CacheStats, IndexPolicy, MemoryLevel, OuterHierarchy, OuterHierarchyConfig,
};
use seesaw_check::{
    AccessCheck, CheckEvent, CheckerSummary, FaultConfig, FaultInjector, FaultKind,
    InjectionStats, ShadowChecker, ViolationCounters,
};
use seesaw_coherence::{
    CoherenceMode, CoherenceTraffic, CoherenceTrafficConfig, DirectoryController,
};
use seesaw_core::{
    BaselineL1, HitTimeAssumption, L1Request, L1Timing, SchedulerHint, SeesawConfig, SeesawL1,
    SeesawStats, TftStats, VivtL1,
};
use seesaw_cpu::{CpuModel, InOrderCpu, OooCpu, RunTotals};
use seesaw_energy::{EnergyAccount, EnergyModel, SramModel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use seesaw_mem::{
    AddressSpace, MemError, Memhog, MemhogConfig, PageSize, PageTableOp, PhysAddr, PhysicalMemory,
    ThpPolicy, VirtAddr, Vma,
};
use seesaw_tlb::{TlbHierarchy, TlbHierarchyConfig, TlbLevel, TlbStats, WalkerStats};
use seesaw_trace::{
    Collect, EventKind, Log2Histogram, MetricsRegistry, NullSink, RingSink, Sink, TranslationLevel,
};
use seesaw_workloads::{TraceGenerator, TraceRef};

use crate::core::{Core, L1Flavor, TranslationIntern};
use crate::status::{ActiveProgress, NoProgress, Progress};
use crate::uncore::Uncore;
use seesaw_trace::ops::CellPhase;
use crate::{
    CoreResult, CpuKind, L1DesignKind, ProbeSource, RunConfig, RunResult, SchedulerHintPolicy,
    SimError,
};

/// Events retained by the traced-run ring (the exact [`seesaw_trace::EventCounts`]
/// mirror counts every event regardless, so reconciliation survives wrap).
const TRACE_RING_CAPACITY: usize = 1 << 18;

/// Weyl increment: decorrelates per-core seeds while leaving core 0 on
/// the run's base seed, so `cores = 1` replays the single-core stream
/// bit-for-bit.
const CORE_SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Per-core per-window event counters.
#[derive(Debug, Default)]
struct Counters {
    super_refs: u64,
    total_refs: u64,
    coherence_probes: u64,
    samples: Vec<crate::Sample>,
    miss_penalty: Log2Histogram,
}

/// Cumulative counters at a sampling-window boundary.
#[derive(Debug, Clone, Copy)]
struct SampleWindow {
    instructions: u64,
    cycles: u64,
    l1_accesses: u64,
    l1_misses: u64,
    l1_ways_probed: u64,
    tft_hits: u64,
    tft_misses: u64,
    walks: u64,
}

impl SampleWindow {
    fn capture<C: CpuModel>(core: &mut Core, cpu: &C) -> SampleWindow {
        let l1 = core.l1.as_dyn().cache_stats();
        let tft = match &mut core.l1 {
            L1Flavor::Seesaw(s) => s.tft_stats(),
            _ => TftStats::default(),
        };
        SampleWindow {
            instructions: cpu.instructions(),
            cycles: cpu.cycles(),
            l1_accesses: l1.accesses(),
            l1_misses: l1.misses,
            l1_ways_probed: l1.ways_probed,
            tft_hits: tft.hits,
            tft_misses: tft.misses,
            walks: core.tlbs.walker_stats().walks,
        }
    }

    /// Window deltas. `carry_tft_rate` is the previous window's TFT hit
    /// rate, reported unchanged when this window saw zero TFT lookups —
    /// a flat-lining series beats a misleading drop to 0.
    fn delta(&self, now: &SampleWindow, carry_tft_rate: f64) -> crate::Sample {
        let instructions = (now.instructions - self.instructions).max(1);
        let tft_lookups = (now.tft_hits - self.tft_hits) + (now.tft_misses - self.tft_misses);
        let accesses = now.l1_accesses - self.l1_accesses;
        crate::Sample {
            instructions: now.instructions,
            cpi: (now.cycles - self.cycles) as f64 / instructions as f64,
            mpki: (now.l1_misses - self.l1_misses) as f64 * 1000.0 / instructions as f64,
            tft_hit_rate: if tft_lookups == 0 {
                carry_tft_rate
            } else {
                (now.tft_hits - self.tft_hits) as f64 / tft_lookups as f64
            },
            walk_mpki: (now.walks - self.walks) as f64 * 1000.0 / instructions as f64,
            ways_per_access: if accesses == 0 {
                0.0
            } else {
                (now.l1_ways_probed - self.l1_ways_probed) as f64 / accesses as f64
            },
        }
    }
}

/// One L1 instance plus the timing facts the run loop needs about it.
struct L1Build {
    l1: L1Flavor,
    timing: L1Timing,
    total_ways: usize,
    serializes: bool,
    /// Ways one coherence probe reads in this design (SEESAW probes a
    /// single partition, §IV-C1; everything else reads the full set).
    probe_ways: usize,
}

/// Builds one L1 instance of the configured design.
fn build_l1(config: &RunConfig, sram: &SramModel) -> L1Build {
    let ghz = config.frequency.ghz();
    let size_kb = config.l1_size_kb;
    let baseline_ways = config.baseline_ways();
    match config.design {
        L1DesignKind::BaselineVipt | L1DesignKind::BaselineWithWayPrediction => {
            let slow = sram.full_lookup_cycles(size_kb, baseline_ways, ghz);
            let timing = L1Timing {
                fast_cycles: slow,
                slow_cycles: slow,
            };
            let cache = CacheConfig::new(size_kb << 10, baseline_ways, 64, IndexPolicy::Vipt);
            let wp = config.design == L1DesignKind::BaselineWithWayPrediction;
            L1Build {
                l1: L1Flavor::Baseline(BaselineL1::new(cache, timing, wp)),
                timing,
                total_ways: baseline_ways,
                serializes: false,
                probe_ways: baseline_ways,
            }
        }
        L1DesignKind::Seesaw | L1DesignKind::SeesawWithWayPrediction => {
            let mut seesaw_cfg = SeesawConfig::with_size_kb(size_kb)
                .with_tft_entries(config.tft_entries)
                .with_insertion(config.insertion);
            if let Some(partitions) = config.seesaw_partitions {
                seesaw_cfg = seesaw_cfg.with_partitions(partitions);
            }
            if config.design == L1DesignKind::SeesawWithWayPrediction {
                seesaw_cfg = seesaw_cfg.with_way_prediction();
            }
            let timing = L1Timing {
                fast_cycles: sram.partition_lookup_cycles(
                    size_kb,
                    baseline_ways,
                    seesaw_cfg.partitions,
                    ghz,
                ),
                slow_cycles: sram.full_lookup_cycles(size_kb, baseline_ways, ghz),
            };
            let probe_ways = (baseline_ways / seesaw_cfg.partitions).max(1);
            L1Build {
                l1: L1Flavor::Seesaw(Box::new(SeesawL1::new(seesaw_cfg, timing))),
                timing,
                total_ways: baseline_ways,
                serializes: false,
                probe_ways,
            }
        }
        L1DesignKind::Pipt { ways } => {
            let slow = sram.full_lookup_cycles(size_kb, ways, ghz);
            let timing = L1Timing {
                fast_cycles: slow,
                slow_cycles: slow,
            };
            let cache = CacheConfig::new(size_kb << 10, ways, 64, IndexPolicy::Pipt);
            L1Build {
                l1: L1Flavor::Baseline(BaselineL1::new(cache, timing, false)),
                timing,
                total_ways: ways,
                serializes: true,
                probe_ways: ways,
            }
        }
        L1DesignKind::Vivt { ways } => {
            let fast = sram.full_lookup_cycles(size_kb, ways, ghz);
            let timing = L1Timing {
                fast_cycles: fast,
                // The slow path is a synonym remap: two probe rounds.
                slow_cycles: fast * 2,
            };
            L1Build {
                l1: L1Flavor::Vivt(Box::new(VivtL1::new(size_kb << 10, ways, timing))),
                timing,
                total_ways: ways,
                serializes: false,
                probe_ways: ways,
            }
        }
    }
}

/// A fully assembled system, ready to run one workload.
///
/// See the crate-level example for typical use.
pub struct System {
    config: RunConfig,
    timing: L1Timing,
    serializes_translation: bool,
    cores: Vec<Core>,
    uncore: Uncore,
}

/// The memory half of a built system: fragmented physical memory, the
/// populated address space, and the workload VMA. Everything here is a
/// pure function of `(workload, seed, memhog_percent)`, while a figure
/// grid re-derives it for every L1 size × frequency × design cell — so
/// built images are interned process-wide and cells start from a clone.
/// Determinism makes the clone sound: it is bit-for-bit the state a
/// fresh build would produce.
#[derive(Clone)]
struct MemoryImage {
    pmem: PhysicalMemory,
    space: AddressSpace,
    vma: Vma,
}

/// Cache key covering every input of [`build_memory_image`]: the full
/// workload spec (every mixture parameter participates via `Debug`,
/// mirroring the runner's config fingerprints), the seed, and the
/// memhog pressure.
fn memory_image_key(config: &RunConfig) -> String {
    format!(
        "{:?}|{}|{}",
        config.workload, config.seed, config.memhog_percent
    )
}

/// Entry caps for the process-wide artifact caches. Eviction is a full
/// clear — crude, but any eviction policy is correct (entries are pure
/// functions of their keys) and sweeps revisit at most a catalog of
/// workloads times a handful of frequencies before moving on.
const MEMORY_IMAGE_CAP: usize = 32;
const STREAM_CACHE_CAP: usize = 32;
const WARM_OUTER_CAP: usize = 24;

fn memory_images() -> &'static Mutex<HashMap<String, MemoryImage>> {
    static CACHE: OnceLock<Mutex<HashMap<String, MemoryImage>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A recorded reference stream: the packed references plus the
/// generator state advanced past them, so a run that hits skips every
/// RNG draw and `ln()` of stream synthesis and still continues the
/// stream seamlessly if it ever outruns the recording.
#[derive(Clone)]
struct StreamArtifact {
    refs: Arc<[u64]>,
    generator: TraceGenerator,
}

fn stream_cache() -> &'static Mutex<HashMap<String, StreamArtifact>> {
    static CACHE: OnceLock<Mutex<HashMap<String, StreamArtifact>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Prewarmed outer hierarchies (L2 + LLC + prefetcher state after the
/// functional prewarm), keyed by everything the prewarm traffic depends
/// on: the memory image (translations), core count, reference count,
/// frequency (outer timing config), and prefetch degree. L1 geometry
/// and design are deliberately absent — prewarm bypasses the L1, which
/// is what makes one warmed image servable to every design cell of a
/// figure row.
fn warm_outer_cache() -> &'static Mutex<HashMap<String, OuterHierarchy>> {
    static CACHE: OnceLock<Mutex<HashMap<String, OuterHierarchy>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Interned [`build_memory_image`]: clones a cached image when one
/// matches, builds and caches otherwise. Build failures propagate
/// uncached (they would recur identically, but they also carry context
/// a caller wants fresh).
fn memory_image(config: &RunConfig) -> Result<MemoryImage, SimError> {
    let key = memory_image_key(config);
    if let Some(img) = memory_images().lock().expect("memory image lock").get(&key) {
        return Ok(img.clone());
    }
    let img = build_memory_image(config)?;
    let mut cache = memory_images().lock().expect("memory image lock");
    if cache.len() >= MEMORY_IMAGE_CAP {
        cache.clear();
    }
    cache.insert(key, img.clone());
    Ok(img)
}

/// Builds the memory half of a system: physical memory fragmented by a
/// light system-noise allocator plus the configured memhog, then the
/// workload's footprint populated through the THP policy — so superpage
/// coverage emerges from the OS model, as on the paper's long-uptime
/// servers (§III-C, §V).
fn build_memory_image(config: &RunConfig) -> Result<MemoryImage, SimError> {
    let footprint = config.workload.footprint_bytes();
    // Physical memory is provisioned at 4x the footprint (min 128 MB):
    // like the paper's loaded servers, the workload is a substantial
    // fraction of memory, so memhog pressure actually bites.
    let pmem_bytes = (footprint * 4).max(128 << 20);
    let mut pmem = PhysicalMemory::new(pmem_bytes);

    // Long-uptime system noise: a thin layer of scattered allocations,
    // some pinned (kernel/network stack), always present.
    let mut noise = Memhog::new(MemhogConfig {
        fraction: 0.04,
        unmovable_fraction: 0.10,
        churn_factor: 0.1,
        seed: config.seed ^ 0x1105e,
    });
    noise.run(&mut pmem);

    // The co-running memhog at the configured pressure, clamped so the
    // workload's footprint still fits (the paper's real system would
    // swap; we don't model swap).
    let requested = f64::from(config.memhog_percent.min(95)) / 100.0;
    let max_fraction =
        (pmem.free_bytes() as f64 - 1.3 * footprint as f64) / pmem.total_bytes() as f64;
    let mut hog = Memhog::new(MemhogConfig {
        fraction: requested.min(max_fraction.max(0.0)),
        seed: config.seed ^ 0x109,
        ..MemhogConfig::default()
    });
    hog.run(&mut pmem);

    // Populate the workload's heap through transparent huge pages.
    let mut space = AddressSpace::new(1);
    let vma = space
        .mmap_anonymous(&mut pmem, footprint, ThpPolicy::Always)
        .map_err(|source| SimError::Mem {
            context: "populating the workload footprint",
            source,
        })?;
    // Compaction during population may have migrated hog-owned blocks.
    let relocations = space.drain_foreign_relocations();
    hog.absorb_relocations(&relocations);
    noise.absorb_relocations(&relocations);
    space.drain_ops(); // initial mappings carry no stale state

    Ok(MemoryImage { pmem, space, vma })
}

impl System {
    /// Builds the system: physical memory is fragmented by a light
    /// system-noise allocator plus the configured memhog before the
    /// workload's footprint is populated through the THP policy — so
    /// superpage coverage emerges from the OS model, as on the paper's
    /// long-uptime servers (§III-C, §V).
    ///
    /// With [`RunConfig::cores`] > 1, N identical cores are built, each
    /// with its own TLBs, L1, and independently-seeded workload stream
    /// (all threads of one process: the address space is shared), and —
    /// under [`ProbeSource::Coherence`] — a functional MOESI directory
    /// (or snoopy bus, per [`RunConfig::snoopy`]) generates every
    /// coherence probe from real peer misses and upgrades.
    ///
    /// # Errors
    /// Returns [`SimError::Mem`] if physical memory cannot back the
    /// workload's footprint even with base pages (the THP path already
    /// degrades superpage failures to 4 KB fallback, counted in
    /// [`RunResult::demotions`]).
    pub fn build(config: &RunConfig) -> Result<System, SimError> {
        let MemoryImage { pmem, space, vma } = memory_image(config)?;
        let sram = SramModel::tsmc28_scaled_22nm();
        let n = config.cores.max(1);
        let mut cores = Vec::with_capacity(n);
        let mut timing = L1Timing {
            fast_cycles: 0,
            slow_cycles: 0,
        };
        let mut total_ways = 0;
        let mut serializes = false;
        let mut probe_ways = 1;
        for id in 0..n {
            let built = build_l1(config, &sram);
            timing = built.timing;
            total_ways = built.total_ways;
            serializes = built.serializes;
            probe_ways = built.probe_ways;
            // Each core streams its own workload instance, decorrelated
            // by a Weyl stride; core 0 keeps the run's base seed so the
            // single-core stream is unchanged by the refactor.
            let lane = (id as u64).wrapping_mul(CORE_SEED_STRIDE);
            // Synthetic probe stream only when no directory generates the
            // real thing; snoopy protocols broadcast, multiplying
            // delivered probes (§VI-B).
            let traffic = (config.probe_source == ProbeSource::Synthetic).then(|| {
                let snoop_factor = if config.snoopy { 3.0 } else { 1.0 };
                CoherenceTraffic::new(CoherenceTrafficConfig {
                    probes_per_kilo_instruction: config.workload.coherence_pki * snoop_factor,
                    invalidate_fraction: 0.3,
                    targeted_fraction: 0.6,
                    seed: config.seed ^ 0xc0c0 ^ lane,
                })
            });
            cores.push(Core {
                id,
                tlbs: TlbHierarchy::new(Self::tlb_config(config)),
                l1: built.l1,
                generator: TraceGenerator::new(&config.workload, config.seed ^ lane),
                hint: SchedulerHint::default(),
                traffic,
                checker: config.checker.then(ShadowChecker::new),
                injector: config.faults.map(|f| {
                    let per_core = FaultConfig {
                        seed: f.seed ^ lane,
                        ..f
                    };
                    // An explicit schedule for this core (shrinker replay)
                    // supersedes the seeded stream; missing entries keep it.
                    match config
                        .fault_schedules
                        .as_ref()
                        .and_then(|s| s.get(id))
                    {
                        Some(schedule) => FaultInjector::replay(per_core, schedule.clone()),
                        None => FaultInjector::new(per_core),
                    }
                }),
                elapsed: 0,
                xlate: TranslationIntern::new(vma.base().raw(), vma.bytes()),
                replay: Arc::from(Vec::new()),
                replay_cursor: 0,
            });
        }

        // The real coherence substrate: a functional model of every
        // core's L1 tag state under MOESI, sized like the timing L1s,
        // probing one partition per delivery for SEESAW designs.
        let coherence = (config.probe_source == ProbeSource::Coherence).then(|| {
            let geometry =
                CacheConfig::new(config.l1_size_kb << 10, total_ways, 64, IndexPolicy::Vipt);
            let mode = if config.snoopy {
                CoherenceMode::Snoopy
            } else {
                CoherenceMode::Directory
            };
            DirectoryController::new(n, geometry, mode, probe_ways)
        });

        let outer_cfg = OuterHierarchyConfig::table_ii(config.frequency.ghz());
        let outer = match config.prefetch_degree {
            Some(degree) => OuterHierarchy::with_prefetcher(outer_cfg, degree),
            None => OuterHierarchy::new(outer_cfg),
        };
        let account = EnergyAccount::new(EnergyModel::new(sram), config.l1_size_kb, total_ways);

        Ok(System {
            config: config.clone(),
            timing,
            serializes_translation: serializes,
            cores,
            uncore: Uncore {
                pmem,
                space,
                vma,
                outer,
                account,
                coherence,
                pressure_hogs: Vec::new(),
                run_demotions: 0,
            },
        })
    }

    /// Runs the configured instruction budget and reports the results.
    ///
    /// The run has two phases: a warmup (default: a third of the budget,
    /// capped at 500k instructions) that fills the caches, TLBs, and TFT
    /// without being measured — the paper's 10-billion-instruction traces
    /// make cold-start effects negligible, so measuring them here would
    /// distort every comparison — followed by the measured window, whose
    /// statistics are reported as deltas. Multi-core runs interleave the
    /// cores round-robin, one reference at a time, through both phases.
    ///
    /// # Errors
    /// Returns [`SimError::PageFault`] if the workload touches unmapped
    /// memory, and [`SimError::Check`] when the differential checker (if
    /// enabled) catches an invariant violation.
    pub fn run(self) -> Result<RunResult, SimError> {
        // The sink and the heartbeat probe are generic parameters of the
        // hot loop: the untraced path monomorphizes with `NullSink`
        // (every emit site compiles to nothing) and likewise the
        // unwatched path with `NoProgress`, so a plain run carries
        // neither. A supervised cell thread installs its heartbeat via
        // `status::set_cell_progress` before building the system; picking
        // it up from the thread-local here keeps `run`'s signature (and
        // every experiment driver above it) unchanged.
        match crate::status::current_cell_progress() {
            Some(cell) => {
                let progress = ActiveProgress::new(cell);
                if self.config.trace {
                    self.run_with_sink(RingSink::new(TRACE_RING_CAPACITY), progress)
                } else {
                    self.run_with_sink(NullSink, progress)
                }
            }
            None => {
                if self.config.trace {
                    self.run_with_sink(RingSink::new(TRACE_RING_CAPACITY), NoProgress)
                } else {
                    self.run_with_sink(NullSink, NoProgress)
                }
            }
        }
    }

    // Outlined so each sink instantiation stays a separate, compact
    // function: letting both the `NullSink` and `RingSink` bodies inline
    // into `run` fuses them into one oversized frame and degrades code
    // locality for the (hot) untraced path.
    #[inline(never)]
    fn run_with_sink<S: Sink, P: Progress>(
        mut self,
        mut sink: S,
        mut progress: P,
    ) -> Result<RunResult, SimError> {
        let n = self.cores.len();
        // Wall-clock per phase to stderr when SEESAW_PHASE_TIMING=1; the
        // profiling recipe in EXPERIMENTS.md builds on this.
        let phase_timing = std::env::var_os("SEESAW_PHASE_TIMING").is_some_and(|v| v == "1");
        let mut phase_clock = std::time::Instant::now();
        let mut phase_mark = |label: &str| {
            if phase_timing {
                eprintln!("[phase] {label} {:?}", phase_clock.elapsed());
                phase_clock = std::time::Instant::now();
            }
        };
        // Ops instrumentation shares `SEESAW_PHASE_TIMING`'s phase
        // boundaries: the heartbeat publishes the phase for live status,
        // and a traced run leaves the same boundaries as `phase` marker
        // events in the stream.
        if P::ENABLED {
            progress.set_phase(CellPhase::Prewarm);
        }
        if S::ENABLED {
            sink.emit(
                0,
                EventKind::Phase {
                    phase: CellPhase::Prewarm,
                },
            );
        }
        // Functional pre-warm in two interned stages. The paper measures
        // windows of traces that have been running for billions of
        // instructions, so the L2/LLC contents are in steady state;
        // without a prewarm, cold DRAM traffic would dominate the energy
        // of every design equally and mask the L1-level effects.
        //
        // Stage 1 — reference streams. Each core's prewarm stream is
        // synthesized in 64-reference batches, packed, and interned
        // process-wide by (workload, seed, core, count): a recurring cell
        // pays one Arc clone instead of re-running the mixture model's
        // RNG draws and `ln()` per reference. The warmup + measured loops
        // replay the same recording (Core::next_ref), so each reference
        // is synthesized exactly once per process and the spliced stream
        // is bit-identical to the generator's.
        let prewarm_refs = (self.config.instructions + self.config.instructions / 2) as usize;
        const PREWARM_CHUNK: usize = 64;
        for i in 0..n {
            let skey = format!(
                "{:?}|{}|{}|{}",
                self.config.workload, self.config.seed, i, prewarm_refs
            );
            let cached = stream_cache()
                .lock()
                .expect("stream cache lock")
                .get(&skey)
                .cloned();
            let art = match cached {
                Some(art) => art,
                None => {
                    let mut packed: Vec<u64> = Vec::with_capacity(prewarm_refs);
                    let mut scratch: Vec<TraceRef> = Vec::with_capacity(PREWARM_CHUNK);
                    while packed.len() < prewarm_refs {
                        scratch.clear();
                        let take = PREWARM_CHUNK.min(prewarm_refs - packed.len());
                        self.cores[i].generator.fill_refs(&mut scratch, take);
                        packed.extend(scratch.iter().map(|r| r.pack()));
                    }
                    let art = StreamArtifact {
                        refs: packed.into(),
                        generator: self.cores[i].generator.clone(),
                    };
                    let mut cache = stream_cache().lock().expect("stream cache lock");
                    if cache.len() >= STREAM_CACHE_CAP {
                        cache.clear();
                    }
                    cache.insert(skey, art.clone());
                    art
                }
            };
            self.cores[i].generator = art.generator;
            self.cores[i].replay = art.refs;
            self.cores[i].replay_cursor = 0;
        }

        // Stage 2 — functional pre-warm: replay each core's upcoming
        // stream against the outer hierarchy only (no timing, no energy,
        // no directory). The warmed outer state is interned by memory
        // image × cores × count × frequency × prefetch — the L1 plays no
        // part here, so one warmed image serves every L1 size and design
        // cell of a figure row as a straight clone.
        let wkey = format!(
            "{}|{}|{}|{:?}|{:?}",
            memory_image_key(&self.config),
            n,
            prewarm_refs,
            self.config.frequency,
            self.config.prefetch_degree
        );
        let warmed = warm_outer_cache()
            .lock()
            .expect("warm outer lock")
            .get(&wkey)
            .cloned();
        match warmed {
            Some(outer) => self.uncore.outer = outer,
            None => {
                for i in 0..n {
                    let stream = self.cores[i].replay.clone();
                    for &word in stream.iter() {
                        let r = TraceRef::unpack(word);
                        let va = self.uncore.vma.base().offset(r.offset);
                        if let Some(t) = self.cores[i].translate_cached(&self.uncore.space, va) {
                            self.uncore.outer.access(t.pa.raw() / 64, r.is_write);
                        }
                    }
                }
                let mut cache = warm_outer_cache().lock().expect("warm outer lock");
                if cache.len() >= WARM_OUTER_CAP {
                    cache.clear();
                }
                cache.insert(wkey, self.uncore.outer.clone());
            }
        }
        phase_mark("prewarm");

        let warmup = self
            .config
            .warmup_instructions
            .unwrap_or((self.config.instructions / 3).min(500_000));
        // Warmup: same loop, throwaway cores, no energy accounting, and
        // never traced — the measured window's events must reconcile with
        // the measured window's stat deltas. Directory state does warm:
        // probes flow between cores, they just go uncharged.
        let mut warm_cpus: Vec<InOrderCpu> = (0..n).map(|_| InOrderCpu::atom()).collect();
        let mut scratch: Vec<Counters> = (0..n).map(|_| Counters::default()).collect();
        if P::ENABLED {
            progress.set_phase(CellPhase::Warmup);
            // Heartbeat fractions are instructions-retired over this
            // target: both windows, across every core.
            progress.set_target(n as u64 * (warmup + self.config.instructions));
        }
        if S::ENABLED {
            sink.emit(
                0,
                EventKind::Phase {
                    phase: CellPhase::Warmup,
                },
            );
        }
        if let Err(e) = interleave(
            &self.config,
            self.timing,
            self.serializes_translation,
            &mut self.cores,
            &mut self.uncore,
            &mut warm_cpus,
            warmup,
            false,
            &mut scratch,
            &mut NullSink,
            &mut progress,
        ) {
            return Err(self.attach_repro(e, &sink));
        }

        phase_mark("warmup");
        if P::ENABLED {
            progress.set_phase(CellPhase::Measure);
        }
        if S::ENABLED {
            sink.emit(
                0,
                EventKind::Phase {
                    phase: CellPhase::Measure,
                },
            );
        }
        // Snapshot per-core counters at the start of the measured window.
        struct CoreBefore {
            l1: CacheStats,
            tlb: TlbStats,
            walker: WalkerStats,
            walk_hist: Log2Histogram,
            seesaw: SeesawStats,
            tft: TftStats,
        }
        let before: Vec<CoreBefore> = self
            .cores
            .iter_mut()
            .map(|core| {
                let (seesaw, tft) = match &mut core.l1 {
                    L1Flavor::Seesaw(l) => (l.seesaw_stats(), l.tft_stats()),
                    _ => (SeesawStats::default(), TftStats::default()),
                };
                CoreBefore {
                    l1: core.l1.as_dyn().cache_stats(),
                    tlb: core.tlbs.l1_stats(),
                    walker: core.tlbs.walker_stats(),
                    walk_hist: core.tlbs.walker_latency_hist(),
                    seesaw,
                    tft,
                }
            })
            .collect();

        // Monomorphized per core model: the inner loop calls `retire`
        // directly instead of through a vtable.
        let mut counters: Vec<Counters> = (0..n).map(|_| Counters::default()).collect();
        let per_core_totals: Vec<RunTotals> = match self.config.cpu {
            CpuKind::InOrder => {
                let mut cpus: Vec<InOrderCpu> = (0..n).map(|_| InOrderCpu::atom()).collect();
                if let Err(e) = interleave(
                    &self.config,
                    self.timing,
                    self.serializes_translation,
                    &mut self.cores,
                    &mut self.uncore,
                    &mut cpus,
                    self.config.instructions,
                    true,
                    &mut counters,
                    &mut sink,
                    &mut progress,
                ) {
                    return Err(self.attach_repro(e, &sink));
                }
                cpus.iter().map(CpuModel::totals).collect()
            }
            CpuKind::OutOfOrder => {
                let mut cpus: Vec<OooCpu> = (0..n).map(|_| OooCpu::sandybridge()).collect();
                if let Err(e) = interleave(
                    &self.config,
                    self.timing,
                    self.serializes_translation,
                    &mut self.cores,
                    &mut self.uncore,
                    &mut cpus,
                    self.config.instructions,
                    true,
                    &mut counters,
                    &mut sink,
                    &mut progress,
                ) {
                    return Err(self.attach_repro(e, &sink));
                }
                cpus.iter().map(CpuModel::totals).collect()
            }
        };

        phase_mark("measured");
        // The run's makespan is the slowest core; work sums across cores.
        let totals = RunTotals {
            cycles: per_core_totals.iter().map(|t| t.cycles).max().unwrap_or(0),
            instructions: per_core_totals.iter().map(|t| t.instructions).sum(),
            squashes: per_core_totals.iter().map(|t| t.squashes).sum(),
        };
        let runtime_ns = totals.cycles as f64 / self.config.frequency.ghz();

        // Per-core measured-window deltas, then fieldwise aggregates
        // (every aggregate reduces to the lone core's delta when n = 1).
        let mut l1_stats = CacheStats::default();
        let mut tlb_stats = TlbStats::default();
        let mut walker_total = WalkerStats::default();
        let mut seesaw_stats = SeesawStats::default();
        let mut tft_stats = TftStats::default();
        let mut walk_latency: Option<Log2Histogram> = None;
        let mut miss_penalty: Option<Log2Histogram> = None;
        let mut core_results: Vec<CoreResult> = Vec::with_capacity(n);
        for (i, core) in self.cores.iter_mut().enumerate() {
            let b = &before[i];
            let l1 = core.l1.as_dyn().cache_stats().delta(&b.l1);
            let (seesaw, tft, wp_acc) = match &mut core.l1 {
                L1Flavor::Seesaw(s) => (
                    s.seesaw_stats().delta(&b.seesaw),
                    s.tft_stats().delta(&b.tft),
                    s.way_prediction_accuracy(),
                ),
                L1Flavor::Baseline(bl) => (
                    SeesawStats::default(),
                    TftStats::default(),
                    bl.way_prediction_accuracy(),
                ),
                L1Flavor::Vivt(_) => (SeesawStats::default(), TftStats::default(), None),
            };
            let tlb = core.tlbs.l1_stats().delta(&b.tlb);
            let walker = core.tlbs.walker_stats().delta(&b.walker);
            let walk_hist = core.tlbs.walker_latency_hist().delta(&b.walk_hist);
            add_cache(&mut l1_stats, &l1);
            add_tlb(&mut tlb_stats, &tlb);
            add_walker(&mut walker_total, &walker);
            add_seesaw(&mut seesaw_stats, &seesaw);
            add_tft(&mut tft_stats, &tft);
            match walk_latency.as_mut() {
                Some(h) => h.merge(&walk_hist),
                None => walk_latency = Some(walk_hist),
            }
            match miss_penalty.as_mut() {
                Some(h) => h.merge(&counters[i].miss_penalty),
                None => miss_penalty = Some(counters[i].miss_penalty),
            }
            let ctr = &mut counters[i];
            core_results.push(CoreResult {
                core: core.id,
                totals: per_core_totals[i],
                l1,
                tlb_l1: tlb,
                walks: walker.walks,
                seesaw,
                tft,
                coherence_probes: ctr.coherence_probes,
                superpage_ref_fraction: if ctr.total_refs == 0 {
                    0.0
                } else {
                    ctr.super_refs as f64 / ctr.total_refs as f64
                },
                way_prediction_accuracy: wp_acc,
                faults: core.injector.as_ref().map(|inj| inj.stats()),
                checker: core.checker.as_ref().map(|c| c.summary()),
                samples: std::mem::take(&mut ctr.samples),
            });
        }
        let walk_latency = walk_latency.unwrap_or_default();
        let miss_penalty = miss_penalty.unwrap_or_default();
        let super_refs: u64 = counters.iter().map(|c| c.super_refs).sum();
        let total_refs: u64 = counters.iter().map(|c| c.total_refs).sum();
        let coherence_probes: u64 = counters.iter().map(|c| c.coherence_probes).sum();
        let faults = self.config.faults.is_some().then(|| {
            let mut total = InjectionStats::default();
            for r in &core_results {
                if let Some(f) = r.faults.as_ref() {
                    add_inject(&mut total, f);
                }
            }
            total
        });
        let checker = self.config.checker.then(|| {
            let mut total = CheckerSummary::default();
            for r in &core_results {
                if let Some(c) = r.checker.as_ref() {
                    add_checker(&mut total, c);
                }
            }
            total
        });
        let coherence = self.uncore.coherence.as_ref().map(|d| d.stats());
        // Dynamic energy accumulated globally during the interleave;
        // leakage charges every L1 instance for the makespan.
        let energy = self.uncore.account.finish_many(runtime_ns, n as u64);
        let trace = sink.finish();

        // One flat namespaced snapshot of every counter (the Collect
        // impls destructure their structs, so no field can be missing).
        let mut metrics = MetricsRegistry::new();
        totals.collect("cpu", &mut metrics);
        l1_stats.collect("l1", &mut metrics);
        miss_penalty.collect("l1.miss_penalty", &mut metrics);
        tlb_stats.collect("tlb.l1", &mut metrics);
        if let Some(l2) = self.cores[0].tlbs.l2_stats() {
            l2.collect("tlb.l2", &mut metrics);
        }
        walker_total.collect("tlb.walker", &mut metrics);
        walk_latency.collect("tlb.walk_latency", &mut metrics);
        seesaw_stats.collect("seesaw", &mut metrics);
        tft_stats.collect("tft", &mut metrics);
        energy.collect("energy", &mut metrics);
        let (l2_cache, llc, dram_accesses, writebacks_received) = self.uncore.outer.stats();
        l2_cache.collect("outer.l2", &mut metrics);
        llc.collect("outer.llc", &mut metrics);
        metrics.set_u64("outer.dram_accesses", dram_accesses);
        metrics.set_u64("outer.writebacks_received", writebacks_received);
        if let Some(pf) = self.uncore.outer.prefetch_stats() {
            pf.collect("outer.prefetch", &mut metrics);
        }
        self.uncore.space.thp_stats().collect("os.thp", &mut metrics);
        self.uncore.pmem.stats().collect("os.buddy", &mut metrics);
        if let L1Flavor::Vivt(v) = &self.cores[0].l1 {
            v.synonym_stats().collect("vivt", &mut metrics);
        }
        if let Some(f) = faults.as_ref() {
            f.collect("faults", &mut metrics);
        }
        if let Some(c) = checker.as_ref() {
            c.collect("checker", &mut metrics);
        }
        if let Some(c) = coherence.as_ref() {
            c.collect("coherence", &mut metrics);
        }
        metrics.set_u64("coherence.probes", coherence_probes);
        metrics.set_f64("os.superpage_coverage", self.uncore.space.superpage_coverage());
        if n > 1 {
            for r in &core_results {
                let p = format!("core{}", r.core);
                r.totals.collect(&format!("{p}.cpu"), &mut metrics);
                r.l1.collect(&format!("{p}.l1"), &mut metrics);
                metrics.set_u64(&format!("{p}.coherence_probes"), r.coherence_probes);
            }
        }
        if let Some(t) = trace.as_ref() {
            t.counts.collect("trace.events", &mut metrics);
            metrics.set_u64("trace.dropped", t.dropped);
        }

        let result = RunResult {
            totals,
            runtime_ns,
            energy,
            l1: l1_stats,
            l1_mpki: l1_stats.mpki(totals.instructions),
            tlb_l1: tlb_stats,
            walks: walker_total.walks,
            seesaw: seesaw_stats,
            tft: tft_stats,
            superpage_coverage: self.uncore.space.superpage_coverage(),
            superpage_ref_fraction: if total_refs == 0 {
                0.0
            } else {
                super_refs as f64 / total_refs as f64
            },
            way_prediction_accuracy: core_results[0].way_prediction_accuracy,
            coherence_probes,
            demotions: self.uncore.space.thp_stats().demoted_slices + self.uncore.run_demotions,
            faults,
            checker,
            samples: core_results[0].samples.clone(),
            walk_latency,
            miss_penalty,
            metrics,
            trace,
            coherence,
            cores: core_results,
        };
        Ok(result)
    }

    /// Superpage coverage of the populated footprint (available before
    /// running — Fig. 3 only needs this).
    pub fn superpage_coverage(&self) -> f64 {
        self.uncore.space.superpage_coverage()
    }

    /// Packages a checker violation into a [`crate::ReproBundle`] and
    /// attaches it to the error, so every caller of [`System::run`] — the
    /// runner's worker pool included — gets a replayable artifact for
    /// free. Only [`SimError::Check`] from a fault-injected run qualifies:
    /// without an injector the run is already deterministic from its
    /// `RunConfig` alone and needs no schedule capture.
    fn attach_repro<S: Sink>(&self, err: SimError, sink: &S) -> SimError {
        let SimError::Check(mut v) = err else {
            return err;
        };
        if v.repro.is_none() {
            if let Some(fault) = self.config.faults {
                let core = self
                    .cores
                    .iter()
                    .position(|c| {
                        c.checker
                            .as_ref()
                            .is_some_and(|ch| ch.summary().violations.total() > 0)
                    })
                    .unwrap_or(0);
                let bundle = crate::repro::build_bundle(
                    &self.config,
                    fault,
                    &self.cores,
                    core,
                    &v,
                    sink.tail_jsonl(crate::repro::EVENT_TAIL_LINES),
                );
                v.autosaved = crate::repro::autosave(&bundle);
                v.repro = Some(Box::new(bundle));
            }
        }
        SimError::Check(v)
    }

    fn tlb_config(config: &RunConfig) -> TlbHierarchyConfig {
        let mut tlb = match config.cpu {
            CpuKind::InOrder => TlbHierarchyConfig::atom(),
            CpuKind::OutOfOrder => TlbHierarchyConfig::sandybridge(),
        };
        if let Some(entries) = config.l1_tlb_4k_entries {
            tlb = tlb.with_l1_4k_entries(entries);
        }
        tlb
    }
}

/// Per-core interleave bookkeeping: one instance per core, replicating
/// the schedule state the single-core loop kept in locals.
struct Schedule {
    executed: u64,
    next_sample: u64,
    window: SampleWindow,
    last_tft_rate: f64,
    next_switch: u64,
    next_page_op: u64,
    page_op_toggle: bool,
}

/// Runs `instructions` instructions per core through the memory system,
/// round-robin one reference at a time so cross-core effects (coherence
/// probes, shootdowns, shared-page-table churn) land deterministically.
/// When `measure` is false (warmup), energy and probe counters are not
/// charged; hardware state (caches, TLBs, TFT, predictors, directory)
/// warms either way.
///
/// The sink is a compile-time parameter: every `if S::ENABLED` guard
/// below is a constant branch, so the untraced instantiation carries no
/// event-emission code at all. Kept out-of-line for code locality: one
/// call per window amortizes to nothing, while inlining four
/// instantiations into the caller bloats it past the instruction cache.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn interleave<C: CpuModel, S: Sink, P: Progress>(
    config: &RunConfig,
    timing: L1Timing,
    serializes_translation: bool,
    cores: &mut [Core],
    uncore: &mut Uncore,
    cpus: &mut [C],
    instructions: u64,
    measure: bool,
    counters: &mut [Counters],
    sink: &mut S,
    progress: &mut P,
) -> Result<(), SimError> {
    let miss_squash = OooCpu::sandybridge().miss_squash_cycles();
    let is_ooo = config.cpu == CpuKind::OutOfOrder;
    let is_seesaw = matches!(cores[0].l1, L1Flavor::Seesaw(_));
    let is_vivt = cores[0].l1.is_vivt();
    let line_bytes = 64u64;
    let n = cores.len();

    // Loop-invariant schedule periods, and the scheduler-hint
    // assumption for the stateless policies — `Occupancy` is the only
    // one that must consult the TLB, and only SEESAW hits on the
    // out-of-order core ever read the answer, so it is computed
    // lazily in that branch below.
    let sample_every = config.sample_interval.unwrap_or(u64::MAX);
    let switch_every = config.context_switch_interval.unwrap_or(u64::MAX);
    let page_op_every = config.page_op_interval.unwrap_or(u64::MAX);
    let static_assumption = match config.scheduler_hint {
        SchedulerHintPolicy::Occupancy => None,
        SchedulerHintPolicy::AlwaysFast => Some(HitTimeAssumption::Fast),
        SchedulerHintPolicy::AlwaysSlow => Some(HitTimeAssumption::Slow),
    };

    let mut sched: Vec<Schedule> = (0..n)
        .map(|i| Schedule {
            executed: 0,
            next_sample: if measure { sample_every } else { u64::MAX },
            window: SampleWindow::capture(&mut cores[i], &cpus[i]),
            last_tft_rate: 0.0,
            next_switch: switch_every,
            next_page_op: page_op_every,
            page_op_toggle: false,
        })
        .collect();

    // `stop_at_instruction` cuts each core's budget at a *global*
    // executed-instruction count (warmup + measured), so the shrinker can
    // halt a replay right after its violation. `elapsed` carries the
    // instructions from earlier phases.
    let limits: Vec<u64> = match config.stop_at_instruction {
        Some(stop) => cores
            .iter()
            .map(|c| instructions.min(stop.saturating_sub(c.elapsed)))
            .collect(),
        None => vec![instructions; n],
    };

    loop {
        let mut alive = false;
        for i in 0..n {
            if sched[i].executed >= limits[i] {
                continue;
            }
            alive = true;
            if S::ENABLED {
                sink.set_core(i as u16);
            }

            // --- Core-private portion: this core's reference against its
            // own TLBs and L1, with the shared outer hierarchy behind its
            // misses. Identical, statement for statement, to the
            // single-core loop this replaces.
            let (at, va, pa, is_write) = {
                let st = &mut sched[i];
                let core = &mut cores[i];
                let cpu = &mut cpus[i];
                let ctr = &mut counters[i];

                let tref = core.next_ref();
                let va = uncore.vma.base().offset(tref.offset);
                let at = core.elapsed + st.executed;

                // Translation (parallel with cache indexing for V-indexed L1s).
                let lookup = core
                    .tlbs
                    .lookup(va, &uncore.space)
                    .ok_or(SimError::PageFault { va: va.raw() })?;
                if S::ENABLED {
                    let level = match lookup.level {
                        TlbLevel::L1 => TranslationLevel::L1,
                        TlbLevel::L2 => TranslationLevel::L2,
                        TlbLevel::PageWalk => TranslationLevel::Walk,
                    };
                    sink.emit(at, EventKind::TlbLookup { level });
                    if lookup.level == TlbLevel::PageWalk {
                        sink.emit(
                            at,
                            EventKind::WalkEnd {
                                cycles: lookup.cost_cycles as u32,
                                superpage: lookup.entry.size.is_superpage(),
                            },
                        );
                    }
                }
                // VIVT hits never consult the TLB; its translation energy is
                // charged below, only for misses.
                if measure && !is_vivt {
                    uncore.account.tlb_l1();
                    match lookup.level {
                        TlbLevel::L1 => {}
                        TlbLevel::L2 => uncore.account.tlb_l2(),
                        TlbLevel::PageWalk => {
                            uncore.account.tlb_l2();
                            uncore.account.page_walk();
                        }
                    }
                }
                if let Some(seesaw) = core.l1.seesaw() {
                    for page in &lookup.superpage_l1_fills {
                        seesaw.tft_fill(page.base());
                        if S::ENABLED {
                            sink.emit(at, EventKind::TftFill);
                        }
                    }
                }

                let pa = lookup.entry.translate(va);
                let page_size = lookup.entry.size;
                if page_size.is_superpage() {
                    ctr.super_refs += 1;
                }
                ctr.total_refs += 1;

                let req = L1Request {
                    va,
                    pa,
                    page_size,
                    is_write: tref.is_write,
                };
                let out = core.l1.as_dyn().access(&req);
                if S::ENABLED {
                    if let Some(hit) = out.tft_hit {
                        sink.emit(at, EventKind::TftLookup { hit });
                    }
                    sink.emit(
                        at,
                        EventKind::PartitionLookup {
                            ways_probed: out.ways_probed.min(u8::MAX as usize) as u8,
                            hit: out.hit,
                        },
                    );
                }

                // Differential shadow check: the hardware's translation and
                // TFT verdict against the page table's ground truth and the
                // program's reference memory.
                if core.checker.is_some() {
                    let authoritative = core
                        .translate_cached(&uncore.space, va)
                        .ok_or(SimError::PageFault { va: va.raw() })?;
                    let checker = core.checker.as_mut().expect("checked above");
                    if let Err(v) = checker.check_access(
                        at,
                        &AccessCheck {
                            va: va.raw(),
                            pa: pa.raw(),
                            authoritative_pa: authoritative.pa.raw(),
                            is_superpage: authoritative.page_size.is_superpage(),
                            tft_hit: out.tft_hit,
                            is_write: tref.is_write,
                        },
                    ) {
                        if S::ENABLED {
                            sink.emit(at, EventKind::Violation { kind: v.kind.name() });
                        }
                        return Err(v.into());
                    }
                }

                let mut squash_cycles = 0u64;
                if is_seesaw {
                    if measure {
                        uncore.account.tft_lookup();
                    }
                    // Refresh on confirmation: when the TFT missed but the TLB
                    // (which hit a 2 MB entry) proves the access is a
                    // superpage, re-mark the region. The paper only draws the
                    // TLB-fill arrows in Fig. 5, but the information is
                    // already at the TFT's write port, and without the refresh
                    // a direct-mapped conflict pair would stay cold between
                    // TLB misses.
                    if out.tft_hit == Some(false) && page_size.is_superpage() {
                        if let Some(seesaw) = core.l1.seesaw() {
                            seesaw.tft_fill(va);
                            if S::ENABLED {
                                sink.emit(at, EventKind::TftFill);
                            }
                        }
                    }
                }
                if measure {
                    uncore.account.cpu_lookup(out.ways_probed);
                }

                // Assemble load-to-use latency.
                let mut latency = if serializes_translation {
                    // PIPT: the TLB access (2 cycles for an L1 TLB hit, plus
                    // any miss cost) fully precedes the array access.
                    2 + lookup.cost_cycles + out.latency_cycles
                } else if is_vivt {
                    // VIVT: hits are translation-free; misses translate on the
                    // way to the L2 (added below with the miss cost).
                    out.latency_cycles
                } else {
                    // VIPT: set selection overlaps translation; the tag
                    // compare waits for the (possibly slow) translation.
                    out.latency_cycles.max(lookup.cost_cycles + 1)
                };

                if !out.hit {
                    let ptag = pa.raw() / line_bytes;
                    let (level, miss_cycles) = uncore.outer.access(ptag, req.is_write);
                    if measure {
                        ctr.miss_penalty.record(miss_cycles);
                    }
                    if is_vivt {
                        // The translation VIVT deferred happens on the miss path.
                        latency += lookup.cost_cycles + 1;
                        if measure {
                            uncore.account.tlb_l1();
                            if lookup.level != TlbLevel::L1 {
                                uncore.account.tlb_l2();
                            }
                            if lookup.level == TlbLevel::PageWalk {
                                uncore.account.page_walk();
                            }
                        }
                    }
                    if measure {
                        uncore.account.l2_access();
                        if level >= MemoryLevel::Llc {
                            uncore.account.llc_access();
                        }
                        if level == MemoryLevel::Dram {
                            uncore.account.dram_access();
                        }
                        uncore.account.l1_fill();
                    }
                    latency += miss_cycles;
                    // Loads are speculatively scheduled as hits on any OoO
                    // design; a miss squashes dependents (equally for the
                    // baseline and SEESAW).
                    if is_ooo {
                        squash_cycles = miss_squash;
                    }
                    if let Some(evicted) = out.evicted {
                        if evicted.dirty {
                            uncore.outer.writeback(evicted.ptag);
                            if measure {
                                uncore.account.l2_access();
                            }
                        }
                    }
                } else if is_ooo && is_seesaw {
                    // Scheduler hit-time assumption (§IV-B3): only meaningful
                    // for SEESAW hits on the out-of-order core, so the
                    // occupancy query runs here rather than once per
                    // reference. Nothing between the TLB lookup above and this
                    // point mutates the TLB, so the answer is the one the
                    // per-reference query produced.
                    let assumption = static_assumption.unwrap_or_else(|| {
                        let (valid, cap) = core.tlbs.superpage_l1_occupancy();
                        core.hint.assumption(valid, cap)
                    });
                    match assumption {
                        HitTimeAssumption::Fast => {
                            // The TFT answers within a quarter cycle (§IV-A2),
                            // so a base-page discovery re-schedules dependents
                            // before they issue: by default that costs nothing
                            // (configurable, to study deeper pipelines).
                            if !out.fast_assumption_held {
                                squash_cycles = config.hit_time_squash_cycles;
                            }
                        }
                        HitTimeAssumption::Slow => {
                            // Dependents were scheduled for the slow time; a
                            // fast hit completes early without helping.
                            latency = latency.max(timing.slow_cycles);
                        }
                    }
                }
                // A way-predictor mispredict replays the dependents that woke
                // for the predicted-way hit time.
                if is_ooo && out.way_prediction_correct == Some(false) {
                    squash_cycles = squash_cycles.max(2);
                }

                cpu.retire(tref.gap, latency, squash_cycles);
                st.executed += tref.gap + 1;
                if P::ENABLED {
                    progress.add(tref.gap + 1);
                }

                // Synthetic coherence probes that arrived during this window
                // (the cores = 1 fallback; absent when the directory below
                // generates the real thing).
                if let Some(traffic) = core.traffic.as_mut() {
                    traffic.record_line(pa.raw() / line_bytes);
                    for probe in traffic.step(tref.gap + 1) {
                        let (_, ways) = core.l1.as_dyn().coherence_probe(
                            PhysAddr::new(probe.ptag * line_bytes),
                            probe.invalidate,
                        );
                        if S::ENABLED {
                            sink.emit(
                                at,
                                EventKind::CoherenceProbe {
                                    ways_probed: ways.min(u8::MAX as usize) as u8,
                                    invalidate: probe.invalidate,
                                },
                            );
                        }
                        if measure {
                            uncore.account.coherence_lookup(ways);
                            ctr.coherence_probes += 1;
                        }
                    }
                }

                (at, va, pa, tref.is_write)
            };

            // --- Real coherence: this reference announces itself to the
            // directory (or snoopy bus), and every resulting probe lands in
            // the peer timing L1 it targets — no synthetic traffic at all.
            let ptag = pa.raw() / line_bytes;
            if let Some(tx) = uncore
                .coherence
                .as_mut()
                .map(|dir| dir.access(i, ptag, is_write))
            {
                for p in tx.probes {
                    let (_, ways) = cores[p.target]
                        .l1
                        .as_dyn()
                        .coherence_probe(PhysAddr::new(ptag * line_bytes), p.invalidate);
                    if S::ENABLED {
                        // The probe is the target core's event; the timeline
                        // position is the initiator's, which is when it fired.
                        sink.set_core(p.target as u16);
                        sink.emit(
                            at,
                            EventKind::CoherenceProbe {
                                ways_probed: ways.min(u8::MAX as usize) as u8,
                                invalidate: p.invalidate,
                            },
                        );
                        sink.set_core(i as u16);
                    }
                    if p.writeback {
                        uncore.outer.writeback(ptag);
                        if measure {
                            uncore.account.l2_access();
                        }
                    }
                    if measure {
                        uncore.account.coherence_lookup(ways);
                        counters[p.target].coherence_probes += 1;
                    }
                }
            }

            // Telemetry window boundary.
            if sched[i].executed >= sched[i].next_sample {
                sched[i].next_sample += sample_every;
                let now = SampleWindow::capture(&mut cores[i], &cpus[i]);
                let sample = sched[i].window.delta(&now, sched[i].last_tft_rate);
                sched[i].last_tft_rate = sample.tft_hit_rate;
                counters[i].samples.push(sample);
                sched[i].window = now;
            }

            // Context switches flush the (ASID-less) TFT.
            if sched[i].executed >= sched[i].next_switch {
                sched[i].next_switch += switch_every;
                if S::ENABLED {
                    sink.emit(at, EventKind::ContextSwitch);
                }
                if let Some(seesaw) = cores[i].l1.seesaw() {
                    seesaw.context_switch();
                    if S::ENABLED {
                        sink.emit(at, EventKind::TftFlush);
                    }
                }
            }

            // Legacy OS page-table churn schedule: a deterministic
            // splinter/re-promote alternation at a fixed interval, routed
            // through the same fault-application path as the injector.
            if sched[i].executed >= sched[i].next_page_op {
                sched[i].next_page_op += page_op_every;
                let now_at = cores[i].elapsed + sched[i].executed;
                let promote = sched[i].page_op_toggle;
                apply_page_op(cores, uncore, i, va, promote, now_at, sink)?;
                sched[i].page_op_toggle = !sched[i].page_op_toggle;
            }

            // Randomized fault injection (the general mechanism).
            let now_at = cores[i].elapsed + sched[i].executed;
            if let Some(kind) = cores[i].injector.as_mut().and_then(|inj| inj.poll(now_at)) {
                apply_fault(config, cores, uncore, i, kind, now_at, sink)?;
            }
        }
        if !alive {
            break;
        }
    }
    for (core, st) in cores.iter_mut().zip(&sched) {
        core.elapsed += st.executed;
    }
    if P::ENABLED {
        progress.flush();
    }
    Ok(())
}

/// Splinters (or re-promotes) the 2 MB region containing `va`,
/// delivering the invalidation events to every core's TLBs — the page
/// table is shared, so a change on one core is a shootdown on all —
/// and to every L1 design that must observe them, mirroring the
/// transition into each core's shadow model and running the structural
/// audits. Shared by the legacy `page_op_interval` schedule and the
/// fault injector.
///
/// A promotion that fails for lack of contiguous physical memory is
/// graceful degradation, not an error: the region stays base-paged and
/// the demotion is counted.
fn apply_page_op<S: Sink>(
    cores: &mut [Core],
    uncore: &mut Uncore,
    initiator: usize,
    va: VirtAddr,
    promote: bool,
    instruction: u64,
    sink: &mut S,
) -> Result<(), SimError> {
    // The shared page table is about to change shape; no core's
    // interned translations may serve a stale mapping.
    for core in cores.iter_mut() {
        core.xlate.invalidate();
    }
    let result = if promote {
        uncore.space.promote(&mut uncore.pmem, va)
    } else {
        uncore.space.splinter(&mut uncore.pmem, va)
    };
    match result {
        Ok(_) => {}
        Err(MemError::Fragmented { .. } | MemError::OutOfMemory { .. }) if promote => {
            uncore.run_demotions += 1;
            let region = VirtAddr::new(va.raw() & !(PageSize::Super2M.bytes() - 1));
            if S::ENABLED {
                sink.emit(
                    instruction,
                    EventKind::Demotion {
                        region_va: region.raw(),
                    },
                );
            }
            for core in cores.iter_mut() {
                if let Some(checker) = core.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::PromotionDemoted {
                            region_va: region.raw(),
                        },
                    );
                }
            }
            return Ok(());
        }
        // The region is not currently in the right state (already
        // splintered / already promoted / outside the heap): benign.
        Err(_) => return Ok(()),
    }
    let chaos = cores[initiator]
        .injector
        .as_ref()
        .map(|i| i.config().chaos)
        .unwrap_or_default();
    for op in uncore.space.drain_ops() {
        // A real shootdown: every core's TLBs observe the invalidation.
        for core in cores.iter_mut() {
            core.tlbs.handle_op(&op);
        }
        if S::ENABLED {
            match &op {
                PageTableOp::Splintered(page) => sink.emit(
                    instruction,
                    EventKind::Splinter {
                        region_va: page.base().raw(),
                    },
                ),
                PageTableOp::Promoted { page, .. } => sink.emit(
                    instruction,
                    EventKind::Promotion {
                        region_va: page.base().raw(),
                    },
                ),
                PageTableOp::Unmapped(page) => sink.emit(
                    instruction,
                    EventKind::Shootdown {
                        page_va: page.base().raw(),
                    },
                ),
                PageTableOp::Mapped(_) => {}
            }
        }
        // ChaosConfig knobs deliberately lose the L1-side invalidation
        // so tests can prove the checker catches the corruption.
        let dropped = match &op {
            PageTableOp::Splintered(_) => chaos.drop_tft_invalidation_on_splinter,
            PageTableOp::Promoted { .. } => chaos.drop_promotion_sweep,
            _ => false,
        };
        for core in cores.iter_mut() {
            match &mut core.l1 {
                L1Flavor::Seesaw(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                // VIVT must always observe remappings: its virtual tags
                // keep hitting after a translation change, and its
                // back-pointers would keep naming the migrated-away frames.
                L1Flavor::Vivt(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                _ => {}
            }
        }
        for core in cores.iter_mut() {
            if let Err(e) = observe_op(core, &uncore.space, &op, instruction) {
                if S::ENABLED {
                    if let SimError::Check(v) = &e {
                        sink.emit(instruction, EventKind::Violation { kind: v.kind.name() });
                    }
                }
                return Err(e);
            }
        }
    }
    if promote {
        // Promotion copies the region into the new 2 MB frame; the
        // kernel's copy streams through the cache hierarchy, so the
        // new frame's lines are LLC-resident afterwards.
        if let Some(t) = uncore.space.translate(va) {
            let first = t.frame.base().raw() / 64;
            let lines = PageSize::Super2M.bytes() / 64;
            for line in first..first + lines {
                uncore.outer.access(line, true);
            }
        }
    }
    Ok(())
}

/// Mirrors one page-table operation into one core's shadow model and
/// runs the structural audits that must hold immediately afterwards.
fn observe_op(
    core: &mut Core,
    space: &AddressSpace,
    op: &PageTableOp,
    instruction: u64,
) -> Result<(), SimError> {
    if core.checker.is_none() {
        return Ok(());
    }
    match op {
        PageTableOp::Splintered(page) => {
            let region_va = page.base().raw();
            if let Some(checker) = core.checker.as_mut() {
                checker.observe_splinter(instruction, region_va);
            }
            // §IV-C2 precision: the TFT must no longer vouch for the
            // splintered region.
            if let L1Flavor::Seesaw(l1) = &core.l1 {
                let still_vouches = l1.tft_probe(page.base());
                if let Some(checker) = core.checker.as_mut() {
                    checker.audit_splinter_tft(instruction, region_va, still_vouches)?;
                }
            }
        }
        PageTableOp::Promoted { page, old_frames } => {
            let region_va = page.base().raw();
            let new_frame = space
                .translate(page.base())
                .map(|t| t.frame.base().raw())
                .unwrap_or(0);
            // old_frames arrive in VA order: frame i backs region
            // offset i × 4 KB.
            let frames: Vec<(u64, u64, u64)> = old_frames
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    (
                        f.base().raw(),
                        f.size().bytes(),
                        i as u64 * PageSize::Base4K.bytes(),
                    )
                })
                .collect();
            if let Some(checker) = core.checker.as_mut() {
                checker.observe_promotion(instruction, region_va, new_frame, &frames);
            }
            match &core.l1 {
                L1Flavor::Seesaw(l1) => {
                    // No line of the migrated-away frames may survive
                    // the promotion sweep.
                    let mut ranges: Vec<(u64, u64)> = old_frames
                        .iter()
                        .map(|f| {
                            let first = f.base().raw() / 64;
                            (first, first + f.size().bytes() / 64)
                        })
                        .collect();
                    ranges.sort_unstable();
                    let resident = l1
                        .resident_lines()
                        .filter(|line| {
                            ranges
                                .binary_search_by(|&(lo, hi)| {
                                    if line.ptag < lo {
                                        std::cmp::Ordering::Greater
                                    } else if line.ptag >= hi {
                                        std::cmp::Ordering::Less
                                    } else {
                                        std::cmp::Ordering::Equal
                                    }
                                })
                                .is_ok()
                        })
                        .count();
                    let unreachable = l1.audit_partition_reachability();
                    if let Some(checker) = core.checker.as_mut() {
                        checker.audit_promotion_sweep(instruction, region_va, resident)?;
                        // §IV-C1: every resident line must sit in the
                        // partition its physical address names.
                        if let Some(unreachable) = unreachable {
                            checker.audit_partitions(instruction, unreachable)?;
                        }
                    }
                }
                L1Flavor::Vivt(l1) => {
                    // VIVT back-pointers must not reference the frames
                    // the promotion freed.
                    let plines: Vec<u64> = l1.mapped_plines().collect();
                    if let Some(checker) = core.checker.as_mut() {
                        checker.audit_physical_mappings(instruction, plines)?;
                    }
                }
                L1Flavor::Baseline(_) => {}
            }
        }
        PageTableOp::Unmapped(page) => {
            if let Some(checker) = core.checker.as_mut() {
                checker.record_event(
                    instruction,
                    CheckEvent::Shootdown {
                        page_va: page.base().raw(),
                    },
                );
            }
        }
        PageTableOp::Mapped(_) => {}
    }
    Ok(())
}

/// Applies one fault injected on `initiator`'s schedule. Globally
/// visible faults (page-table reshapes, shootdowns, memory pressure)
/// broadcast to every core; core-local ones (TFT storms, context
/// switches) stay on the initiator.
fn apply_fault<S: Sink>(
    config: &RunConfig,
    cores: &mut [Core],
    uncore: &mut Uncore,
    initiator: usize,
    kind: FaultKind,
    instruction: u64,
    sink: &mut S,
) -> Result<(), SimError> {
    // Every fault kind may reshape translations (splinters,
    // promotions, pressure-driven remaps); drop the interned
    // translations wholesale rather than reason per-kind.
    for core in cores.iter_mut() {
        core.xlate.invalidate();
    }
    if S::ENABLED {
        sink.emit(instruction, EventKind::Fault { kind: kind.name() });
    }
    for core in cores.iter_mut() {
        if let Some(checker) = core.checker.as_mut() {
            checker.record_event(instruction, CheckEvent::Injected(kind));
        }
    }
    let footprint = config.workload.footprint_bytes();
    let regions = (footprint / PageSize::Super2M.bytes()).max(1) as usize;
    match kind {
        FaultKind::Splinter | FaultKind::Promote => {
            let region = pick(&mut cores[initiator], regions);
            let va = uncore
                .vma
                .base()
                .offset(region as u64 * PageSize::Super2M.bytes());
            apply_page_op(
                cores,
                uncore,
                initiator,
                va,
                kind == FaultKind::Promote,
                instruction,
                sink,
            )?;
        }
        FaultKind::TlbShootdown => {
            // A spurious shootdown: the TLBs — all of them, the page
            // table is shared — drop a mapping it still holds. Harmless
            // by design — the next access refills from the (unchanged)
            // page table — and exactly the event a stale-translation bug
            // would hide behind.
            let pages = (footprint / PageSize::Base4K.bytes()).max(1) as usize;
            let page = pick(&mut cores[initiator], pages);
            let va = uncore
                .vma
                .base()
                .offset(page as u64 * PageSize::Base4K.bytes());
            if let Some(t) = uncore.space.translate(va) {
                let op = PageTableOp::Unmapped(t.vpage);
                for core in cores.iter_mut() {
                    core.tlbs.handle_op(&op);
                }
                if S::ENABLED {
                    sink.emit(
                        instruction,
                        EventKind::Shootdown {
                            page_va: t.vpage.base().raw(),
                        },
                    );
                }
                for core in cores.iter_mut() {
                    if let Some(checker) = core.checker.as_mut() {
                        checker.record_event(
                            instruction,
                            CheckEvent::Shootdown {
                                page_va: t.vpage.base().raw(),
                            },
                        );
                    }
                }
            }
        }
        FaultKind::TftStorm => {
            // Conflict-alias the initiator's direct-mapped TFT with fills
            // for many genuinely superpage-backed regions, forcing
            // evictions of live entries. Base-paged regions are never
            // filled — that would be injecting the very bug the TFT's
            // precision invariant forbids.
            for _ in 0..16 {
                let region = pick(&mut cores[initiator], regions);
                let va = uncore
                    .vma
                    .base()
                    .offset(region as u64 * PageSize::Super2M.bytes());
                let backed_super = uncore
                    .space
                    .translate(va)
                    .is_some_and(|t| t.page_size.is_superpage());
                if backed_super {
                    if let Some(seesaw) = cores[initiator].l1.seesaw() {
                        seesaw.tft_fill(va);
                        if S::ENABLED {
                            sink.emit(instruction, EventKind::TftFill);
                        }
                    }
                }
            }
        }
        FaultKind::ContextSwitch => {
            if S::ENABLED {
                sink.emit(instruction, EventKind::ContextSwitch);
            }
            if let Some(seesaw) = cores[initiator].l1.seesaw() {
                seesaw.context_switch();
                if S::ENABLED {
                    sink.emit(instruction, EventKind::TftFlush);
                }
            }
            if let Some(checker) = cores[initiator].checker.as_mut() {
                checker.record_event(instruction, CheckEvent::ContextSwitch);
            }
        }
        FaultKind::MemPressure => {
            // A fresh co-runner grabs a slice of physical memory,
            // fragmenting the free lists (Memhog instances are
            // single-use, so each pressure event gets its own).
            let seed = config.seed ^ (pick(&mut cores[initiator], 1 << 30) as u64);
            let mut hog = Memhog::new(MemhogConfig {
                fraction: 0.05,
                unmovable_fraction: 0.0,
                churn_factor: 0.0,
                seed,
            });
            hog.run(&mut uncore.pmem);
            let held: u64 = uncore.pressure_hogs.iter().map(Memhog::held_frames).sum();
            for core in cores.iter_mut() {
                if let Some(checker) = core.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::MemPressure {
                            held_frames: held + hog.held_frames(),
                        },
                    );
                }
            }
            uncore.pressure_hogs.push(hog);
        }
        FaultKind::MemRelease => {
            if let Some(mut hog) = uncore.pressure_hogs.pop() {
                hog.release(&mut uncore.pmem);
            }
            let held: u64 = uncore.pressure_hogs.iter().map(Memhog::held_frames).sum();
            for core in cores.iter_mut() {
                if let Some(checker) = core.checker.as_mut() {
                    checker.record_event(instruction, CheckEvent::MemPressure { held_frames: held });
                }
            }
        }
    }
    Ok(())
}

/// A deterministic choice from the core's seeded injector stream (0 when
/// no injector is attached — callers only reach this through one).
fn pick(core: &mut Core, n: usize) -> usize {
    core.injector.as_mut().map_or(0, |i| i.pick(n))
}

fn add_cache(total: &mut CacheStats, s: &CacheStats) {
    let CacheStats {
        hits,
        misses,
        fills,
        evictions,
        writebacks,
        ways_probed,
        coherence_probes,
        coherence_ways_probed,
        coherence_invalidations,
    } = *s;
    total.hits += hits;
    total.misses += misses;
    total.fills += fills;
    total.evictions += evictions;
    total.writebacks += writebacks;
    total.ways_probed += ways_probed;
    total.coherence_probes += coherence_probes;
    total.coherence_ways_probed += coherence_ways_probed;
    total.coherence_invalidations += coherence_invalidations;
}

fn add_tlb(total: &mut TlbStats, s: &TlbStats) {
    let TlbStats {
        hits,
        misses,
        fills,
        evictions,
        invalidations,
        flushes,
    } = *s;
    total.hits += hits;
    total.misses += misses;
    total.fills += fills;
    total.evictions += evictions;
    total.invalidations += invalidations;
    total.flushes += flushes;
}

fn add_walker(total: &mut WalkerStats, s: &WalkerStats) {
    let WalkerStats {
        walks,
        cycles,
        faults,
    } = *s;
    total.walks += walks;
    total.cycles += cycles;
    total.faults += faults;
}

fn add_seesaw(total: &mut SeesawStats, s: &SeesawStats) {
    let SeesawStats {
        super_tft_hit_cache_hit,
        super_tft_hit_cache_miss,
        super_tft_miss,
        base_page,
        super_tft_miss_l1_miss,
        sweeps,
        swept_lines,
    } = *s;
    total.super_tft_hit_cache_hit += super_tft_hit_cache_hit;
    total.super_tft_hit_cache_miss += super_tft_hit_cache_miss;
    total.super_tft_miss += super_tft_miss;
    total.base_page += base_page;
    total.super_tft_miss_l1_miss += super_tft_miss_l1_miss;
    total.sweeps += sweeps;
    total.swept_lines += swept_lines;
}

fn add_tft(total: &mut TftStats, s: &TftStats) {
    let TftStats {
        hits,
        misses,
        fills,
        invalidations,
        flushes,
    } = *s;
    total.hits += hits;
    total.misses += misses;
    total.fills += fills;
    total.invalidations += invalidations;
    total.flushes += flushes;
}

fn add_inject(total: &mut InjectionStats, s: &InjectionStats) {
    let InjectionStats {
        splinters,
        promotions,
        shootdowns,
        tft_storms,
        context_switches,
        mem_pressure,
        mem_releases,
    } = *s;
    total.splinters += splinters;
    total.promotions += promotions;
    total.shootdowns += shootdowns;
    total.tft_storms += tft_storms;
    total.context_switches += context_switches;
    total.mem_pressure += mem_pressure;
    total.mem_releases += mem_releases;
}

fn add_checker(total: &mut CheckerSummary, s: &CheckerSummary) {
    let CheckerSummary {
        loads_checked,
        stores_tracked,
        audits,
        violations,
    } = *s;
    total.loads_checked += loads_checked;
    total.stores_tracked += stores_tracked;
    total.audits += audits;
    let ViolationCounters {
        stale_translation,
        tft_claims_base_page,
        data_divergence,
        use_after_free,
        swept_line_resident,
        partition_unreachable,
        stale_physical_mapping,
    } = violations;
    total.violations.stale_translation += stale_translation;
    total.violations.tft_claims_base_page += tft_claims_base_page;
    total.violations.data_divergence += data_divergence;
    total.violations.use_after_free += use_after_free;
    total.violations.swept_line_resident += swept_line_resident;
    total.violations.partition_unreachable += partition_unreachable;
    total.violations.stale_physical_mapping += stale_physical_mapping;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig::quick("astar").design(L1DesignKind::Seesaw);
        let a = System::build(&cfg).unwrap().run().unwrap();
        let b = System::build(&cfg).unwrap().run().unwrap();
        assert_eq!(a.totals.cycles, b.totals.cycles);
        assert_eq!(a.l1.misses, b.l1.misses);
        assert_eq!(a.energy.total_nj(), b.energy.total_nj());
    }

    #[test]
    fn seesaw_beats_baseline_on_runtime_and_energy() {
        let base = System::build(&RunConfig::quick("redis")).unwrap().run().unwrap();
        let seesaw =
            System::build(&RunConfig::quick("redis").design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        assert!(
            seesaw.totals.cycles < base.totals.cycles,
            "SEESAW {} vs baseline {} cycles",
            seesaw.totals.cycles,
            base.totals.cycles
        );
        assert!(seesaw.energy.total_nj() < base.energy.total_nj());
        assert!(seesaw.runtime_improvement_pct(&base) > 0.0);
    }

    #[test]
    fn superpage_refs_dominate_unfragmented_runs() {
        let r = System::build(&RunConfig::quick("mongo").design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        assert!(
            r.superpage_ref_fraction > 0.7,
            "got {}",
            r.superpage_ref_fraction
        );
        assert!(r.superpage_coverage > 0.8);
    }

    #[test]
    fn fragmentation_reduces_coverage_and_benefit() {
        let frag = |pct| {
            System::build(
                &RunConfig::quick("olio")
                    .design(L1DesignKind::Seesaw)
                    .memhog(pct),
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let light = frag(0);
        let heavy = frag(85);
        assert!(
            heavy.superpage_coverage < light.superpage_coverage,
            "heavy {} vs light {}",
            heavy.superpage_coverage,
            light.superpage_coverage
        );
    }

    #[test]
    fn seesaw_never_regresses_without_superpages() {
        // With crushing fragmentation, SEESAW degenerates to the baseline
        // (slow path everywhere) but must not be slower than it.
        let cfg = RunConfig::quick("mcf").memhog(90);
        let base = System::build(&cfg).unwrap().run().unwrap();
        let seesaw = System::build(&cfg.design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        let delta = seesaw.runtime_improvement_pct(&base);
        assert!(delta > -1.0, "SEESAW regressed by {delta:.2}%");
    }

    #[test]
    fn inorder_gains_exceed_ooo_gains() {
        let gain = |cpu: CpuKind| {
            let base = System::build(&RunConfig::quick("tunk").cpu(cpu)).unwrap().run().unwrap();
            let seesaw =
                System::build(&RunConfig::quick("tunk").cpu(cpu).design(L1DesignKind::Seesaw))
                    .unwrap()
                    .run()
                    .unwrap();
            seesaw.runtime_improvement_pct(&base)
        };
        let ino = gain(CpuKind::InOrder);
        let ooo = gain(CpuKind::OutOfOrder);
        assert!(
            ino > ooo,
            "in-order gain {ino:.2}% must exceed out-of-order {ooo:.2}%"
        );
    }

    #[test]
    fn page_table_churn_stays_correct() {
        let mut cfg = RunConfig::quick("astar").design(L1DesignKind::Seesaw);
        cfg.page_op_interval = Some(20_000);
        let r = System::build(&cfg).unwrap().run().unwrap();
        // The run completes with sweeps recorded and sane stats.
        assert!(r.totals.instructions >= 150_000);
        assert!(r.seesaw.sweeps > 0 || r.tft.invalidations > 0);
    }

    #[test]
    fn pipt_design_runs() {
        let cfg = RunConfig::quick("xalanc").design(L1DesignKind::Pipt { ways: 4 });
        let r = System::build(&cfg).unwrap().run().unwrap();
        assert!(r.totals.cycles > 0);
        assert!(r.l1.accesses() > 0);
    }

    #[test]
    fn two_core_directory_runs_deliver_only_real_probes() {
        let cfg = RunConfig::quick("redis").design(L1DesignKind::Seesaw).cores(2);
        let r = System::build(&cfg).unwrap().run().unwrap();
        assert_eq!(r.cores.len(), 2);
        let coh = r.coherence.expect("directory attached for cores=2");
        assert!(coh.probes_delivered > 0, "real sharing must generate probes");
        // Every probe the cores received came out of the directory.
        assert!(
            r.coherence_probes <= coh.probes_delivered,
            "counted {} probes but the directory only delivered {}",
            r.coherence_probes,
            coh.probes_delivered
        );
        assert!(r.cores.iter().all(|c| c.totals.instructions >= 150_000));
    }

    #[test]
    fn single_core_runs_have_no_directory() {
        let r = System::build(&RunConfig::quick("astar")).unwrap().run().unwrap();
        assert!(r.coherence.is_none());
        assert_eq!(r.cores.len(), 1);
    }
}
