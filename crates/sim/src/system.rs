//! Full-system assembly: OS + TLBs + L1 design + outer hierarchy +
//! coherence + energy + CPU timing.

use seesaw_cache::{CacheConfig, IndexPolicy, MemoryLevel, OuterHierarchy, OuterHierarchyConfig};
use seesaw_check::{AccessCheck, CheckEvent, FaultInjector, FaultKind, ShadowChecker};
use seesaw_coherence::{CoherenceTraffic, CoherenceTrafficConfig};
use seesaw_core::{
    BaselineL1, HitTimeAssumption, L1DataCache, L1Request, L1Timing, SchedulerHint, SeesawConfig,
    SeesawL1, SeesawStats, TftStats, VivtL1,
};
use seesaw_cpu::{CpuModel, InOrderCpu, OooCpu};
use seesaw_energy::{EnergyAccount, EnergyModel, SramModel};
use seesaw_mem::{
    AddressSpace, MemError, Memhog, MemhogConfig, PageSize, PageTableOp, PhysAddr, PhysicalMemory,
    ThpPolicy, Translation, VirtAddr, Vma,
};
use seesaw_tlb::{TlbHierarchy, TlbHierarchyConfig, TlbLevel};
use seesaw_trace::{
    Collect, EventKind, Log2Histogram, MetricsRegistry, NullSink, RingSink, Sink, TranslationLevel,
};
use seesaw_workloads::TraceGenerator;

use crate::{CpuKind, L1DesignKind, RunConfig, RunResult, SchedulerHintPolicy, SimError};

/// Events retained by the traced-run ring (the exact [`seesaw_trace::EventCounts`]
/// mirror counts every event regardless, so reconciliation survives wrap).
const TRACE_RING_CAPACITY: usize = 1 << 18;

/// Per-window event counters.
#[derive(Debug, Default)]
struct Counters {
    super_refs: u64,
    total_refs: u64,
    coherence_probes: u64,
    samples: Vec<crate::Sample>,
    miss_penalty: Log2Histogram,
}

/// Cumulative counters at a sampling-window boundary.
#[derive(Debug, Clone, Copy)]
struct SampleWindow {
    instructions: u64,
    cycles: u64,
    l1_accesses: u64,
    l1_misses: u64,
    l1_ways_probed: u64,
    tft_hits: u64,
    tft_misses: u64,
    walks: u64,
}

impl SampleWindow {
    fn capture(system: &mut System, cpu: &dyn CpuModel) -> SampleWindow {
        let l1 = system.l1.as_dyn().cache_stats();
        let tft = match &mut system.l1 {
            L1Flavor::Seesaw(s) => s.tft_stats(),
            _ => TftStats::default(),
        };
        SampleWindow {
            instructions: cpu.instructions(),
            cycles: cpu.cycles(),
            l1_accesses: l1.accesses(),
            l1_misses: l1.misses,
            l1_ways_probed: l1.ways_probed,
            tft_hits: tft.hits,
            tft_misses: tft.misses,
            walks: system.tlbs.walker_stats().walks,
        }
    }

    /// Window deltas. `carry_tft_rate` is the previous window's TFT hit
    /// rate, reported unchanged when this window saw zero TFT lookups —
    /// a flat-lining series beats a misleading drop to 0.
    fn delta(&self, now: &SampleWindow, carry_tft_rate: f64) -> crate::Sample {
        let instructions = (now.instructions - self.instructions).max(1);
        let tft_lookups = (now.tft_hits - self.tft_hits) + (now.tft_misses - self.tft_misses);
        let accesses = now.l1_accesses - self.l1_accesses;
        crate::Sample {
            instructions: now.instructions,
            cpi: (now.cycles - self.cycles) as f64 / instructions as f64,
            mpki: (now.l1_misses - self.l1_misses) as f64 * 1000.0 / instructions as f64,
            tft_hit_rate: if tft_lookups == 0 {
                carry_tft_rate
            } else {
                (now.tft_hits - self.tft_hits) as f64 / tft_lookups as f64
            },
            walk_mpki: (now.walks - self.walks) as f64 * 1000.0 / instructions as f64,
            ways_per_access: if accesses == 0 {
                0.0
            } else {
                (now.l1_ways_probed - self.l1_ways_probed) as f64 / accesses as f64
            },
        }
    }
}

/// The L1 design under test, unified for the run loop.
#[allow(clippy::large_enum_variant)]
enum L1Flavor {
    Baseline(BaselineL1),
    Seesaw(Box<SeesawL1>),
    Vivt(Box<VivtL1>),
}

impl L1Flavor {
    fn as_dyn(&mut self) -> &mut dyn L1DataCache {
        match self {
            L1Flavor::Baseline(l1) => l1,
            L1Flavor::Seesaw(l1) => l1.as_mut(),
            L1Flavor::Vivt(l1) => l1.as_mut(),
        }
    }

    fn seesaw(&mut self) -> Option<&mut SeesawL1> {
        match self {
            L1Flavor::Seesaw(l1) => Some(l1),
            _ => None,
        }
    }

    fn is_vivt(&self) -> bool {
        matches!(self, L1Flavor::Vivt(_))
    }
}

/// A fully assembled system, ready to run one workload.
///
/// See the crate-level example for typical use.
pub struct System {
    config: RunConfig,
    pmem: PhysicalMemory,
    space: AddressSpace,
    vma: Vma,
    tlbs: TlbHierarchy,
    l1: L1Flavor,
    timing: L1Timing,
    outer: OuterHierarchy,
    traffic: CoherenceTraffic,
    account: EnergyAccount,
    generator: TraceGenerator,
    hint: SchedulerHint,
    serializes_translation: bool,
    /// Differential shadow model, when [`RunConfig::checker`] is set.
    checker: Option<ShadowChecker>,
    /// Seeded fault source, when [`RunConfig::faults`] is set.
    injector: Option<FaultInjector>,
    /// Memhog instances holding injected memory pressure (LIFO).
    pressure_hogs: Vec<Memhog>,
    /// Injected promotions that failed and degraded to base pages.
    run_demotions: u64,
    /// Instructions executed across every simulate() call, so injector
    /// schedules and checker diagnostics span warmup + measurement.
    elapsed: u64,
    /// One-entry last-translation micro-cache in front of
    /// `space.translate`: the prewarm replay and the per-access shadow
    /// check walk the same page for many consecutive references, so one
    /// remembered page-table entry short-circuits the page-table's
    /// BTreeMap probes. Invalidated on *every* page-table mutation path
    /// (splinters, promotions, shootdowns, memory pressure) so the
    /// differential checker still compares against ground truth.
    last_translation: Option<Translation>,
}

impl System {
    /// Builds the system: physical memory is fragmented by a light
    /// system-noise allocator plus the configured memhog before the
    /// workload's footprint is populated through the THP policy — so
    /// superpage coverage emerges from the OS model, as on the paper's
    /// long-uptime servers (§III-C, §V).
    ///
    /// # Errors
    /// Returns [`SimError::Mem`] if physical memory cannot back the
    /// workload's footprint even with base pages (the THP path already
    /// degrades superpage failures to 4 KB fallback, counted in
    /// [`RunResult::demotions`]).
    pub fn build(config: &RunConfig) -> Result<System, SimError> {
        let footprint = config.workload.footprint_bytes();
        // Physical memory is provisioned at 4x the footprint (min 128 MB):
        // like the paper's loaded servers, the workload is a substantial
        // fraction of memory, so memhog pressure actually bites.
        let pmem_bytes = (footprint * 4).max(128 << 20);
        let mut pmem = PhysicalMemory::new(pmem_bytes);

        // Long-uptime system noise: a thin layer of scattered allocations,
        // some pinned (kernel/network stack), always present.
        let mut noise = Memhog::new(MemhogConfig {
            fraction: 0.04,
            unmovable_fraction: 0.10,
            churn_factor: 0.1,
            seed: config.seed ^ 0x1105e,
        });
        noise.run(&mut pmem);

        // The co-running memhog at the configured pressure, clamped so the
        // workload's footprint still fits (the paper's real system would
        // swap; we don't model swap).
        let requested = f64::from(config.memhog_percent.min(95)) / 100.0;
        let max_fraction =
            (pmem.free_bytes() as f64 - 1.3 * footprint as f64) / pmem.total_bytes() as f64;
        let mut hog = Memhog::new(MemhogConfig {
            fraction: requested.min(max_fraction.max(0.0)),
            seed: config.seed ^ 0x109,
            ..MemhogConfig::default()
        });
        hog.run(&mut pmem);

        // Populate the workload's heap through transparent huge pages.
        let mut space = AddressSpace::new(1);
        let vma = space
            .mmap_anonymous(&mut pmem, footprint, ThpPolicy::Always)
            .map_err(|source| SimError::Mem {
                context: "populating the workload footprint",
                source,
            })?;
        // Compaction during population may have migrated hog-owned blocks.
        let relocations = space.drain_foreign_relocations();
        hog.absorb_relocations(&relocations);
        noise.absorb_relocations(&relocations);
        space.drain_ops(); // initial mappings carry no stale state

        let tlb_config = Self::tlb_config(config);
        let tlbs = TlbHierarchy::new(tlb_config);

        let sram = SramModel::tsmc28_scaled_22nm();
        let ghz = config.frequency.ghz();
        let size_kb = config.l1_size_kb;
        let baseline_ways = config.baseline_ways();
        let (l1, timing, total_ways, serializes) = match config.design {
            L1DesignKind::BaselineVipt | L1DesignKind::BaselineWithWayPrediction => {
                let slow = sram.full_lookup_cycles(size_kb, baseline_ways, ghz);
                let timing = L1Timing {
                    fast_cycles: slow,
                    slow_cycles: slow,
                };
                let cache =
                    CacheConfig::new(size_kb << 10, baseline_ways, 64, IndexPolicy::Vipt);
                let wp = config.design == L1DesignKind::BaselineWithWayPrediction;
                (
                    L1Flavor::Baseline(BaselineL1::new(cache, timing, wp)),
                    timing,
                    baseline_ways,
                    false,
                )
            }
            L1DesignKind::Seesaw | L1DesignKind::SeesawWithWayPrediction => {
                let mut seesaw_cfg = SeesawConfig::with_size_kb(size_kb)
                    .with_tft_entries(config.tft_entries)
                    .with_insertion(config.insertion);
                if let Some(partitions) = config.seesaw_partitions {
                    seesaw_cfg = seesaw_cfg.with_partitions(partitions);
                }
                if config.design == L1DesignKind::SeesawWithWayPrediction {
                    seesaw_cfg = seesaw_cfg.with_way_prediction();
                }
                let timing = L1Timing {
                    fast_cycles: sram.partition_lookup_cycles(
                        size_kb,
                        baseline_ways,
                        seesaw_cfg.partitions,
                        ghz,
                    ),
                    slow_cycles: sram.full_lookup_cycles(size_kb, baseline_ways, ghz),
                };
                (
                    L1Flavor::Seesaw(Box::new(SeesawL1::new(seesaw_cfg, timing))),
                    timing,
                    baseline_ways,
                    false,
                )
            }
            L1DesignKind::Pipt { ways } => {
                let slow = sram.full_lookup_cycles(size_kb, ways, ghz);
                let timing = L1Timing {
                    fast_cycles: slow,
                    slow_cycles: slow,
                };
                let cache = CacheConfig::new(size_kb << 10, ways, 64, IndexPolicy::Pipt);
                (
                    L1Flavor::Baseline(BaselineL1::new(cache, timing, false)),
                    timing,
                    ways,
                    true,
                )
            }
            L1DesignKind::Vivt { ways } => {
                let fast = sram.full_lookup_cycles(size_kb, ways, ghz);
                let timing = L1Timing {
                    fast_cycles: fast,
                    // The slow path is a synonym remap: two probe rounds.
                    slow_cycles: fast * 2,
                };
                (
                    L1Flavor::Vivt(Box::new(VivtL1::new(size_kb << 10, ways, timing))),
                    timing,
                    ways,
                    false,
                )
            }
        };

        let outer_cfg = OuterHierarchyConfig::table_ii(ghz);
        let outer = match config.prefetch_degree {
            Some(degree) => OuterHierarchy::with_prefetcher(outer_cfg, degree),
            None => OuterHierarchy::new(outer_cfg),
        };

        // Coherence probe stream; snoopy protocols broadcast, multiplying
        // delivered probes (§VI-B).
        let snoop_factor = if config.snoopy { 3.0 } else { 1.0 };
        let traffic = CoherenceTraffic::new(CoherenceTrafficConfig {
            probes_per_kilo_instruction: config.workload.coherence_pki * snoop_factor,
            invalidate_fraction: 0.3,
            targeted_fraction: 0.6,
            seed: config.seed ^ 0xc0c0,
        });

        let account = EnergyAccount::new(EnergyModel::new(sram), size_kb, total_ways);
        let generator = TraceGenerator::new(&config.workload, config.seed);

        Ok(System {
            config: config.clone(),
            pmem,
            space,
            vma,
            tlbs,
            l1,
            timing,
            outer,
            traffic,
            account,
            generator,
            hint: SchedulerHint::default(),
            serializes_translation: serializes,
            checker: config.checker.then(ShadowChecker::new),
            injector: config.faults.map(FaultInjector::new),
            pressure_hogs: Vec::new(),
            run_demotions: 0,
            elapsed: 0,
            last_translation: None,
        })
    }

    /// Translates `va` through the one-entry last-translation micro-cache.
    ///
    /// Workload traces have strong page locality, so consecutive
    /// references usually land in the page the previous one resolved;
    /// when they do, the physical address is synthesized from the cached
    /// [`Translation`] without walking the page-table maps. The cached
    /// entry is dropped on every page-table mutation (see
    /// [`System::apply_page_op`] and [`System::apply_fault`]) so the
    /// answer is always what `space.translate` would return — the shadow
    /// checker compares against exactly this value.
    #[inline]
    fn translate_cached(&mut self, va: VirtAddr) -> Option<Translation> {
        if let Some(t) = self.last_translation {
            let base = t.vpage.base().raw();
            if va.raw().wrapping_sub(base) < t.vpage.size().bytes() {
                return Some(Translation {
                    pa: PhysAddr::new(t.frame.base().raw() + (va.raw() - base)),
                    ..t
                });
            }
        }
        let t = self.space.translate(va)?;
        self.last_translation = Some(t);
        Some(t)
    }

    /// Runs the configured instruction budget and reports the results.
    ///
    /// The run has two phases: a warmup (default: a third of the budget,
    /// capped at 500k instructions) that fills the caches, TLBs, and TFT
    /// without being measured — the paper's 10-billion-instruction traces
    /// make cold-start effects negligible, so measuring them here would
    /// distort every comparison — followed by the measured window, whose
    /// statistics are reported as deltas.
    ///
    /// # Errors
    /// Returns [`SimError::PageFault`] if the workload touches unmapped
    /// memory, and [`SimError::Check`] when the differential checker (if
    /// enabled) catches an invariant violation.
    pub fn run(self) -> Result<RunResult, SimError> {
        // The sink is a generic parameter of the hot loop: the untraced
        // path monomorphizes with `NullSink` (every emit site compiles to
        // nothing), the traced path with the bounded ring.
        if self.config.trace {
            self.run_with_sink(RingSink::new(TRACE_RING_CAPACITY))
        } else {
            self.run_with_sink(NullSink)
        }
    }

    // Outlined so each sink instantiation stays a separate, compact
    // function: letting both the `NullSink` and `RingSink` bodies inline
    // into `run` fuses them into one oversized frame and degrades code
    // locality for the (hot) untraced path.
    #[inline(never)]
    fn run_with_sink<S: Sink>(mut self, mut sink: S) -> Result<RunResult, SimError> {
        // Functional pre-warm: replay the upcoming reference stream
        // against the outer hierarchy only (no timing, no energy). The
        // paper measures windows of traces that have been running for
        // billions of instructions, so the L2/LLC contents are in steady
        // state; without this, cold DRAM traffic would dominate the
        // energy of every design equally and mask the L1-level effects.
        let mut prewarm = self.generator.clone();
        let prewarm_refs = self.config.instructions + self.config.instructions / 2;
        for _ in 0..prewarm_refs {
            let r = prewarm.next_ref();
            let va = self.vma.base().offset(r.offset);
            if let Some(t) = self.translate_cached(va) {
                self.outer.access(t.pa.raw() / 64, r.is_write);
            }
        }

        let warmup = self
            .config
            .warmup_instructions
            .unwrap_or((self.config.instructions / 3).min(500_000));
        // Warmup: same loop, throwaway core, no energy accounting, and
        // never traced — the measured window's events must reconcile with
        // the measured window's stat deltas.
        let mut warm_cpu = InOrderCpu::atom();
        let mut scratch = Counters::default();
        self.simulate(warmup, &mut warm_cpu, false, &mut scratch, &mut NullSink)?;

        // Snapshot counters at the start of the measured window.
        let l1_before = self.l1.as_dyn().cache_stats();
        let tlb_before = self.tlbs.l1_stats();
        let walker_before = self.tlbs.walker_stats();
        let walk_hist_before = self.tlbs.walker_latency_hist();
        let (seesaw_before, tft_before) = match &mut self.l1 {
            L1Flavor::Seesaw(l) => (l.seesaw_stats(), l.tft_stats()),
            _ => (SeesawStats::default(), TftStats::default()),
        };

        // Monomorphized per core model: the inner loop calls `retire`
        // directly instead of through a vtable.
        let mut counters = Counters::default();
        let totals = match self.config.cpu {
            CpuKind::InOrder => {
                let mut cpu = InOrderCpu::atom();
                self.simulate(
                    self.config.instructions,
                    &mut cpu,
                    true,
                    &mut counters,
                    &mut sink,
                )?;
                cpu.totals()
            }
            CpuKind::OutOfOrder => {
                let mut cpu = OooCpu::sandybridge();
                self.simulate(
                    self.config.instructions,
                    &mut cpu,
                    true,
                    &mut counters,
                    &mut sink,
                )?;
                cpu.totals()
            }
        };
        let runtime_ns = totals.cycles as f64 / self.config.frequency.ghz();
        let l1_stats = self.l1.as_dyn().cache_stats().delta(&l1_before);
        let (seesaw_stats, tft_stats, wp_acc) = match &mut self.l1 {
            L1Flavor::Seesaw(s) => (
                s.seesaw_stats().delta(&seesaw_before),
                s.tft_stats().delta(&tft_before),
                s.way_prediction_accuracy(),
            ),
            L1Flavor::Baseline(b) => (
                SeesawStats::default(),
                TftStats::default(),
                b.way_prediction_accuracy(),
            ),
            L1Flavor::Vivt(_) => (SeesawStats::default(), TftStats::default(), None),
        };
        let tlb_stats = self.tlbs.l1_stats().delta(&tlb_before);
        let walker_stats = self.tlbs.walker_stats().delta(&walker_before);
        let walk_latency = self.tlbs.walker_latency_hist().delta(&walk_hist_before);
        let energy = self.account.finish(runtime_ns);
        let trace = sink.finish();

        // One flat namespaced snapshot of every counter (the Collect
        // impls destructure their structs, so no field can be missing).
        let mut metrics = MetricsRegistry::new();
        totals.collect("cpu", &mut metrics);
        l1_stats.collect("l1", &mut metrics);
        counters.miss_penalty.collect("l1.miss_penalty", &mut metrics);
        tlb_stats.collect("tlb.l1", &mut metrics);
        if let Some(l2) = self.tlbs.l2_stats() {
            l2.collect("tlb.l2", &mut metrics);
        }
        walker_stats.collect("tlb.walker", &mut metrics);
        walk_latency.collect("tlb.walk_latency", &mut metrics);
        seesaw_stats.collect("seesaw", &mut metrics);
        tft_stats.collect("tft", &mut metrics);
        energy.collect("energy", &mut metrics);
        let (l2_cache, llc, dram_accesses, writebacks_received) = self.outer.stats();
        l2_cache.collect("outer.l2", &mut metrics);
        llc.collect("outer.llc", &mut metrics);
        metrics.set_u64("outer.dram_accesses", dram_accesses);
        metrics.set_u64("outer.writebacks_received", writebacks_received);
        if let Some(pf) = self.outer.prefetch_stats() {
            pf.collect("outer.prefetch", &mut metrics);
        }
        self.space.thp_stats().collect("os.thp", &mut metrics);
        self.pmem.stats().collect("os.buddy", &mut metrics);
        if let L1Flavor::Vivt(v) = &self.l1 {
            v.synonym_stats().collect("vivt", &mut metrics);
        }
        if let Some(injector) = self.injector.as_ref() {
            injector.stats().collect("faults", &mut metrics);
        }
        if let Some(checker) = self.checker.as_ref() {
            checker.summary().collect("checker", &mut metrics);
        }
        metrics.set_u64("coherence.probes", counters.coherence_probes);
        metrics.set_f64("os.superpage_coverage", self.space.superpage_coverage());
        if let Some(t) = trace.as_ref() {
            t.counts.collect("trace.events", &mut metrics);
            metrics.set_u64("trace.dropped", t.dropped);
        }

        let result = RunResult {
            totals,
            runtime_ns,
            energy,
            l1: l1_stats,
            l1_mpki: l1_stats.mpki(totals.instructions),
            tlb_l1: tlb_stats,
            walks: walker_stats.walks,
            seesaw: seesaw_stats,
            tft: tft_stats,
            superpage_coverage: self.space.superpage_coverage(),
            superpage_ref_fraction: if counters.total_refs == 0 {
                0.0
            } else {
                counters.super_refs as f64 / counters.total_refs as f64
            },
            way_prediction_accuracy: wp_acc,
            coherence_probes: counters.coherence_probes,
            demotions: self.space.thp_stats().demoted_slices + self.run_demotions,
            faults: self.injector.as_ref().map(|i| i.stats()),
            checker: self.checker.as_ref().map(|c| c.summary()),
            samples: counters.samples,
            walk_latency,
            miss_penalty: counters.miss_penalty,
            metrics,
            trace,
        };
        Ok(result)
    }

    /// Runs `instructions` instructions through the memory system. When
    /// `measure` is false (warmup), energy and probe counters are not
    /// charged; hardware state (caches, TLBs, TFT, predictors) warms
    /// either way.
    ///
    /// The sink is a compile-time parameter: every `if S::ENABLED` guard
    /// below is a constant branch, so the untraced instantiation carries
    /// no event-emission code at all. Kept out-of-line for the same
    /// code-locality reason as [`System::run_with_sink`]: one call per
    /// window amortizes to nothing, while inlining four instantiations
    /// into the caller bloats it past the instruction cache.
    #[inline(never)]
    fn simulate<C: CpuModel, S: Sink>(
        &mut self,
        instructions: u64,
        cpu: &mut C,
        measure: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) -> Result<(), SimError> {
        let miss_squash = OooCpu::sandybridge().miss_squash_cycles();
        let is_ooo = self.config.cpu == CpuKind::OutOfOrder;
        let is_seesaw = matches!(self.l1, L1Flavor::Seesaw(_));
        let is_vivt = self.l1.is_vivt();
        let line_bytes = 64u64;

        // Loop-invariant schedule periods, and the scheduler-hint
        // assumption for the stateless policies — `Occupancy` is the only
        // one that must consult the TLB, and only SEESAW hits on the
        // out-of-order core ever read the answer, so it is computed
        // lazily in that branch below.
        let sample_every = self.config.sample_interval.unwrap_or(u64::MAX);
        let switch_every = self.config.context_switch_interval.unwrap_or(u64::MAX);
        let page_op_every = self.config.page_op_interval.unwrap_or(u64::MAX);
        let static_assumption = match self.config.scheduler_hint {
            SchedulerHintPolicy::Occupancy => None,
            SchedulerHintPolicy::AlwaysFast => Some(HitTimeAssumption::Fast),
            SchedulerHintPolicy::AlwaysSlow => Some(HitTimeAssumption::Slow),
        };

        let mut executed = 0u64;
        let mut next_sample = if measure { sample_every } else { u64::MAX };
        let mut window = SampleWindow::capture(self, cpu);
        let mut last_tft_rate = 0.0;
        let mut next_switch = switch_every;
        let mut next_page_op = page_op_every;
        let mut page_op_toggle = false;

        while executed < instructions {
            let tref = self.generator.next_ref();
            let va = self.vma.base().offset(tref.offset);
            let at = self.elapsed + executed;

            // Translation (parallel with cache indexing for V-indexed L1s).
            let lookup = self
                .tlbs
                .lookup(va, &self.space)
                .ok_or(SimError::PageFault { va: va.raw() })?;
            if S::ENABLED {
                let level = match lookup.level {
                    TlbLevel::L1 => TranslationLevel::L1,
                    TlbLevel::L2 => TranslationLevel::L2,
                    TlbLevel::PageWalk => TranslationLevel::Walk,
                };
                sink.emit(at, EventKind::TlbLookup { level });
                if lookup.level == TlbLevel::PageWalk {
                    sink.emit(
                        at,
                        EventKind::WalkEnd {
                            cycles: lookup.cost_cycles as u32,
                            superpage: lookup.entry.size.is_superpage(),
                        },
                    );
                }
            }
            // VIVT hits never consult the TLB; its translation energy is
            // charged below, only for misses.
            if measure && !is_vivt {
                self.account.tlb_l1();
                match lookup.level {
                    TlbLevel::L1 => {}
                    TlbLevel::L2 => self.account.tlb_l2(),
                    TlbLevel::PageWalk => {
                        self.account.tlb_l2();
                        self.account.page_walk();
                    }
                }
            }
            if let Some(seesaw) = self.l1.seesaw() {
                for page in &lookup.superpage_l1_fills {
                    seesaw.tft_fill(page.base());
                    if S::ENABLED {
                        sink.emit(at, EventKind::TftFill);
                    }
                }
            }

            let pa = lookup.entry.translate(va);
            let page_size = lookup.entry.size;
            if page_size.is_superpage() {
                counters.super_refs += 1;
            }
            counters.total_refs += 1;

            let req = L1Request {
                va,
                pa,
                page_size,
                is_write: tref.is_write,
            };
            let out = self.l1.as_dyn().access(&req);
            if S::ENABLED {
                if let Some(hit) = out.tft_hit {
                    sink.emit(at, EventKind::TftLookup { hit });
                }
                sink.emit(
                    at,
                    EventKind::PartitionLookup {
                        ways_probed: out.ways_probed.min(u8::MAX as usize) as u8,
                        hit: out.hit,
                    },
                );
            }

            // Differential shadow check: the hardware's translation and
            // TFT verdict against the page table's ground truth and the
            // program's reference memory.
            if self.checker.is_some() {
                let authoritative = self
                    .translate_cached(va)
                    .ok_or(SimError::PageFault { va: va.raw() })?;
                let checker = self.checker.as_mut().expect("checked above");
                if let Err(v) = checker.check_access(
                    at,
                    &AccessCheck {
                        va: va.raw(),
                        pa: pa.raw(),
                        authoritative_pa: authoritative.pa.raw(),
                        is_superpage: authoritative.page_size.is_superpage(),
                        tft_hit: out.tft_hit,
                        is_write: tref.is_write,
                    },
                ) {
                    if S::ENABLED {
                        sink.emit(at, EventKind::Violation { kind: v.kind.name() });
                    }
                    return Err(v.into());
                }
            }

            let mut squash_cycles = 0u64;
            if is_seesaw {
                if measure {
                    self.account.tft_lookup();
                }
                // Refresh on confirmation: when the TFT missed but the TLB
                // (which hit a 2 MB entry) proves the access is a
                // superpage, re-mark the region. The paper only draws the
                // TLB-fill arrows in Fig. 5, but the information is
                // already at the TFT's write port, and without the refresh
                // a direct-mapped conflict pair would stay cold between
                // TLB misses.
                if out.tft_hit == Some(false) && page_size.is_superpage() {
                    if let Some(seesaw) = self.l1.seesaw() {
                        seesaw.tft_fill(va);
                        if S::ENABLED {
                            sink.emit(at, EventKind::TftFill);
                        }
                    }
                }
            }
            if measure {
                self.account.cpu_lookup(out.ways_probed);
            }

            // Assemble load-to-use latency.
            let mut latency = if self.serializes_translation {
                // PIPT: the TLB access (2 cycles for an L1 TLB hit, plus
                // any miss cost) fully precedes the array access.
                2 + lookup.cost_cycles + out.latency_cycles
            } else if is_vivt {
                // VIVT: hits are translation-free; misses translate on the
                // way to the L2 (added below with the miss cost).
                out.latency_cycles
            } else {
                // VIPT: set selection overlaps translation; the tag
                // compare waits for the (possibly slow) translation.
                out.latency_cycles.max(lookup.cost_cycles + 1)
            };

            if !out.hit {
                let ptag = pa.raw() / line_bytes;
                let (level, miss_cycles) = self.outer.access(ptag, req.is_write);
                if measure {
                    counters.miss_penalty.record(miss_cycles);
                }
                if is_vivt {
                    // The translation VIVT deferred happens on the miss path.
                    latency += lookup.cost_cycles + 1;
                    if measure {
                        self.account.tlb_l1();
                        if lookup.level != TlbLevel::L1 {
                            self.account.tlb_l2();
                        }
                        if lookup.level == TlbLevel::PageWalk {
                            self.account.page_walk();
                        }
                    }
                }
                if measure {
                    self.account.l2_access();
                    if level >= MemoryLevel::Llc {
                        self.account.llc_access();
                    }
                    if level == MemoryLevel::Dram {
                        self.account.dram_access();
                    }
                    self.account.l1_fill();
                }
                latency += miss_cycles;
                // Loads are speculatively scheduled as hits on any OoO
                // design; a miss squashes dependents (equally for the
                // baseline and SEESAW).
                if is_ooo {
                    squash_cycles = miss_squash;
                }
                if let Some(evicted) = out.evicted {
                    if evicted.dirty {
                        self.outer.writeback(evicted.ptag);
                        if measure {
                            self.account.l2_access();
                        }
                    }
                }
            } else if is_ooo && is_seesaw {
                // Scheduler hit-time assumption (§IV-B3): only meaningful
                // for SEESAW hits on the out-of-order core, so the
                // occupancy query runs here rather than once per
                // reference. Nothing between the TLB lookup above and this
                // point mutates the TLB, so the answer is the one the
                // per-reference query produced.
                let assumption = static_assumption.unwrap_or_else(|| {
                    let (valid, cap) = self.tlbs.superpage_l1_occupancy();
                    self.hint.assumption(valid, cap)
                });
                match assumption {
                    HitTimeAssumption::Fast => {
                        // The TFT answers within a quarter cycle (§IV-A2),
                        // so a base-page discovery re-schedules dependents
                        // before they issue: by default that costs nothing
                        // (configurable, to study deeper pipelines).
                        if !out.fast_assumption_held {
                            squash_cycles = self.config.hit_time_squash_cycles;
                        }
                    }
                    HitTimeAssumption::Slow => {
                        // Dependents were scheduled for the slow time; a
                        // fast hit completes early without helping.
                        latency = latency.max(self.timing.slow_cycles);
                    }
                }
            }
            // A way-predictor mispredict replays the dependents that woke
            // for the predicted-way hit time.
            if is_ooo && out.way_prediction_correct == Some(false) {
                squash_cycles = squash_cycles.max(2);
            }

            cpu.retire(tref.gap, latency, squash_cycles);
            executed += tref.gap + 1;

            // Coherence probes that arrived during this window.
            self.traffic.record_line(pa.raw() / line_bytes);
            for probe in self.traffic.step(tref.gap + 1) {
                let (_, ways) = self
                    .l1
                    .as_dyn()
                    .coherence_probe(PhysAddr::new(probe.ptag * line_bytes), probe.invalidate);
                if S::ENABLED {
                    sink.emit(
                        at,
                        EventKind::CoherenceProbe {
                            ways_probed: ways.min(u8::MAX as usize) as u8,
                            invalidate: probe.invalidate,
                        },
                    );
                }
                if measure {
                    self.account.coherence_lookup(ways);
                    counters.coherence_probes += 1;
                }
            }

            // Telemetry window boundary.
            if executed >= next_sample {
                next_sample += sample_every;
                let now = SampleWindow::capture(self, cpu);
                let sample = window.delta(&now, last_tft_rate);
                last_tft_rate = sample.tft_hit_rate;
                counters.samples.push(sample);
                window = now;
            }

            // Context switches flush the (ASID-less) TFT.
            if executed >= next_switch {
                next_switch += switch_every;
                if S::ENABLED {
                    sink.emit(at, EventKind::ContextSwitch);
                }
                if let Some(seesaw) = self.l1.seesaw() {
                    seesaw.context_switch();
                    if S::ENABLED {
                        sink.emit(at, EventKind::TftFlush);
                    }
                }
            }

            // Legacy OS page-table churn schedule: a deterministic
            // splinter/re-promote alternation at a fixed interval, routed
            // through the same fault-application path as the injector.
            if executed >= next_page_op {
                next_page_op += page_op_every;
                self.apply_page_op(va, page_op_toggle, self.elapsed + executed, sink)?;
                page_op_toggle = !page_op_toggle;
            }

            // Randomized fault injection (the general mechanism).
            if let Some(kind) = self
                .injector
                .as_mut()
                .and_then(|i| i.poll(self.elapsed + executed))
            {
                self.apply_fault(kind, self.elapsed + executed, sink)?;
            }
        }
        self.elapsed += executed;
        Ok(())
    }

    /// Superpage coverage of the populated footprint (available before
    /// running — Fig. 3 only needs this).
    pub fn superpage_coverage(&self) -> f64 {
        self.space.superpage_coverage()
    }

    fn tlb_config(config: &RunConfig) -> TlbHierarchyConfig {
        let mut tlb = match config.cpu {
            CpuKind::InOrder => TlbHierarchyConfig::atom(),
            CpuKind::OutOfOrder => TlbHierarchyConfig::sandybridge(),
        };
        if let Some(entries) = config.l1_tlb_4k_entries {
            tlb = tlb.with_l1_4k_entries(entries);
        }
        tlb
    }

    /// Splinters (or re-promotes) the 2 MB region containing `va`,
    /// delivering the invalidation events to the TLBs and every L1 design
    /// that must observe them, mirroring the transition into the shadow
    /// model, and running the structural audits. Shared by the legacy
    /// `page_op_interval` schedule and the fault injector.
    ///
    /// A promotion that fails for lack of contiguous physical memory is
    /// graceful degradation, not an error: the region stays base-paged
    /// and the demotion is counted.
    fn apply_page_op<S: Sink>(
        &mut self,
        va: VirtAddr,
        promote: bool,
        instruction: u64,
        sink: &mut S,
    ) -> Result<(), SimError> {
        // The page table is about to change shape; the last-translation
        // micro-cache must not serve a stale mapping.
        self.last_translation = None;
        let result = if promote {
            self.space.promote(&mut self.pmem, va)
        } else {
            self.space.splinter(&mut self.pmem, va)
        };
        match result {
            Ok(_) => {}
            Err(MemError::Fragmented { .. } | MemError::OutOfMemory { .. }) if promote => {
                self.run_demotions += 1;
                let region = VirtAddr::new(va.raw() & !(PageSize::Super2M.bytes() - 1));
                if S::ENABLED {
                    sink.emit(
                        instruction,
                        EventKind::Demotion {
                            region_va: region.raw(),
                        },
                    );
                }
                if let Some(checker) = self.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::PromotionDemoted {
                            region_va: region.raw(),
                        },
                    );
                }
                return Ok(());
            }
            // The region is not currently in the right state (already
            // splintered / already promoted / outside the heap): benign.
            Err(_) => return Ok(()),
        }
        let chaos = self
            .injector
            .as_ref()
            .map(|i| i.config().chaos)
            .unwrap_or_default();
        for op in self.space.drain_ops() {
            self.tlbs.handle_op(&op);
            if S::ENABLED {
                match &op {
                    PageTableOp::Splintered(page) => sink.emit(
                        instruction,
                        EventKind::Splinter {
                            region_va: page.base().raw(),
                        },
                    ),
                    PageTableOp::Promoted { page, .. } => sink.emit(
                        instruction,
                        EventKind::Promotion {
                            region_va: page.base().raw(),
                        },
                    ),
                    PageTableOp::Unmapped(page) => sink.emit(
                        instruction,
                        EventKind::Shootdown {
                            page_va: page.base().raw(),
                        },
                    ),
                    PageTableOp::Mapped(_) => {}
                }
            }
            // ChaosConfig knobs deliberately lose the L1-side invalidation
            // so tests can prove the checker catches the corruption.
            let dropped = match &op {
                PageTableOp::Splintered(_) => chaos.drop_tft_invalidation_on_splinter,
                PageTableOp::Promoted { .. } => chaos.drop_promotion_sweep,
                _ => false,
            };
            match &mut self.l1 {
                L1Flavor::Seesaw(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                // VIVT must always observe remappings: its virtual tags
                // keep hitting after a translation change, and its
                // back-pointers would keep naming the migrated-away frames.
                L1Flavor::Vivt(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                _ => {}
            }
            if let Err(e) = self.observe_op(&op, instruction) {
                if S::ENABLED {
                    if let SimError::Check(v) = &e {
                        sink.emit(instruction, EventKind::Violation { kind: v.kind.name() });
                    }
                }
                return Err(e);
            }
        }
        if promote {
            // Promotion copies the region into the new 2 MB frame; the
            // kernel's copy streams through the cache hierarchy, so the
            // new frame's lines are LLC-resident afterwards.
            if let Some(t) = self.space.translate(va) {
                let first = t.frame.base().raw() / 64;
                let lines = PageSize::Super2M.bytes() / 64;
                for line in first..first + lines {
                    self.outer.access(line, true);
                }
            }
        }
        Ok(())
    }

    /// Mirrors one page-table operation into the shadow model and runs
    /// the structural audits that must hold immediately afterwards.
    fn observe_op(&mut self, op: &PageTableOp, instruction: u64) -> Result<(), SimError> {
        if self.checker.is_none() {
            return Ok(());
        }
        match op {
            PageTableOp::Splintered(page) => {
                let region_va = page.base().raw();
                if let Some(checker) = self.checker.as_mut() {
                    checker.observe_splinter(instruction, region_va);
                }
                // §IV-C2 precision: the TFT must no longer vouch for the
                // splintered region.
                if let L1Flavor::Seesaw(l1) = &self.l1 {
                    let still_vouches = l1.tft_probe(page.base());
                    if let Some(checker) = self.checker.as_mut() {
                        checker.audit_splinter_tft(instruction, region_va, still_vouches)?;
                    }
                }
            }
            PageTableOp::Promoted { page, old_frames } => {
                let region_va = page.base().raw();
                let new_frame = self
                    .space
                    .translate(page.base())
                    .map(|t| t.frame.base().raw())
                    .unwrap_or(0);
                // old_frames arrive in VA order: frame i backs region
                // offset i × 4 KB.
                let frames: Vec<(u64, u64, u64)> = old_frames
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        (
                            f.base().raw(),
                            f.size().bytes(),
                            i as u64 * PageSize::Base4K.bytes(),
                        )
                    })
                    .collect();
                if let Some(checker) = self.checker.as_mut() {
                    checker.observe_promotion(instruction, region_va, new_frame, &frames);
                }
                match &self.l1 {
                    L1Flavor::Seesaw(l1) => {
                        // No line of the migrated-away frames may survive
                        // the promotion sweep.
                        let mut ranges: Vec<(u64, u64)> = old_frames
                            .iter()
                            .map(|f| {
                                let first = f.base().raw() / 64;
                                (first, first + f.size().bytes() / 64)
                            })
                            .collect();
                        ranges.sort_unstable();
                        let resident = l1
                            .resident_lines()
                            .filter(|line| {
                                ranges
                                    .binary_search_by(|&(lo, hi)| {
                                        if line.ptag < lo {
                                            std::cmp::Ordering::Greater
                                        } else if line.ptag >= hi {
                                            std::cmp::Ordering::Less
                                        } else {
                                            std::cmp::Ordering::Equal
                                        }
                                    })
                                    .is_ok()
                            })
                            .count();
                        let unreachable = l1.audit_partition_reachability();
                        if let Some(checker) = self.checker.as_mut() {
                            checker.audit_promotion_sweep(instruction, region_va, resident)?;
                            // §IV-C1: every resident line must sit in the
                            // partition its physical address names.
                            if let Some(unreachable) = unreachable {
                                checker.audit_partitions(instruction, unreachable)?;
                            }
                        }
                    }
                    L1Flavor::Vivt(l1) => {
                        // VIVT back-pointers must not reference the frames
                        // the promotion freed.
                        let plines: Vec<u64> = l1.mapped_plines().collect();
                        if let Some(checker) = self.checker.as_mut() {
                            checker.audit_physical_mappings(instruction, plines)?;
                        }
                    }
                    L1Flavor::Baseline(_) => {}
                }
            }
            PageTableOp::Unmapped(page) => {
                if let Some(checker) = self.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::Shootdown {
                            page_va: page.base().raw(),
                        },
                    );
                }
            }
            PageTableOp::Mapped(_) => {}
        }
        Ok(())
    }

    /// Applies one injected fault.
    fn apply_fault<S: Sink>(
        &mut self,
        kind: FaultKind,
        instruction: u64,
        sink: &mut S,
    ) -> Result<(), SimError> {
        // Every fault kind may reshape translations (splinters,
        // promotions, pressure-driven remaps); drop the micro-cache
        // wholesale rather than reason per-kind.
        self.last_translation = None;
        if S::ENABLED {
            sink.emit(instruction, EventKind::Fault { kind: kind.name() });
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.record_event(instruction, CheckEvent::Injected(kind));
        }
        let footprint = self.config.workload.footprint_bytes();
        let regions = (footprint / PageSize::Super2M.bytes()).max(1) as usize;
        match kind {
            FaultKind::Splinter | FaultKind::Promote => {
                let region = self.pick(regions);
                let va = self
                    .vma
                    .base()
                    .offset(region as u64 * PageSize::Super2M.bytes());
                self.apply_page_op(va, kind == FaultKind::Promote, instruction, sink)?;
            }
            FaultKind::TlbShootdown => {
                // A spurious shootdown: the TLBs drop a mapping the page
                // table still holds. Harmless by design — the next access
                // refills from the (unchanged) page table — and exactly
                // the event a stale-translation bug would hide behind.
                let pages = (footprint / PageSize::Base4K.bytes()).max(1) as usize;
                let page = self.pick(pages);
                let va = self
                    .vma
                    .base()
                    .offset(page as u64 * PageSize::Base4K.bytes());
                if let Some(t) = self.space.translate(va) {
                    let op = PageTableOp::Unmapped(t.vpage);
                    self.tlbs.handle_op(&op);
                    if S::ENABLED {
                        sink.emit(
                            instruction,
                            EventKind::Shootdown {
                                page_va: t.vpage.base().raw(),
                            },
                        );
                    }
                    if let Some(checker) = self.checker.as_mut() {
                        checker.record_event(
                            instruction,
                            CheckEvent::Shootdown {
                                page_va: t.vpage.base().raw(),
                            },
                        );
                    }
                }
            }
            FaultKind::TftStorm => {
                // Conflict-alias the direct-mapped TFT with fills for many
                // genuinely superpage-backed regions, forcing evictions of
                // live entries. Base-paged regions are never filled — that
                // would be injecting the very bug the TFT's precision
                // invariant forbids.
                for _ in 0..16 {
                    let region = self.pick(regions);
                    let va = self
                        .vma
                        .base()
                        .offset(region as u64 * PageSize::Super2M.bytes());
                    let backed_super = self
                        .space
                        .translate(va)
                        .is_some_and(|t| t.page_size.is_superpage());
                    if backed_super {
                        if let Some(seesaw) = self.l1.seesaw() {
                            seesaw.tft_fill(va);
                            if S::ENABLED {
                                sink.emit(instruction, EventKind::TftFill);
                            }
                        }
                    }
                }
            }
            FaultKind::ContextSwitch => {
                if S::ENABLED {
                    sink.emit(instruction, EventKind::ContextSwitch);
                }
                if let Some(seesaw) = self.l1.seesaw() {
                    seesaw.context_switch();
                    if S::ENABLED {
                        sink.emit(instruction, EventKind::TftFlush);
                    }
                }
                if let Some(checker) = self.checker.as_mut() {
                    checker.record_event(instruction, CheckEvent::ContextSwitch);
                }
            }
            FaultKind::MemPressure => {
                // A fresh co-runner grabs a slice of physical memory,
                // fragmenting the free lists (Memhog instances are
                // single-use, so each pressure event gets its own).
                let seed = self.config.seed ^ (self.pick(1 << 30) as u64);
                let mut hog = Memhog::new(MemhogConfig {
                    fraction: 0.05,
                    unmovable_fraction: 0.0,
                    churn_factor: 0.0,
                    seed,
                });
                hog.run(&mut self.pmem);
                let held: u64 = self.pressure_hogs.iter().map(Memhog::held_frames).sum();
                if let Some(checker) = self.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::MemPressure {
                            held_frames: held + hog.held_frames(),
                        },
                    );
                }
                self.pressure_hogs.push(hog);
            }
            FaultKind::MemRelease => {
                if let Some(mut hog) = self.pressure_hogs.pop() {
                    hog.release(&mut self.pmem);
                }
                let held: u64 = self.pressure_hogs.iter().map(Memhog::held_frames).sum();
                if let Some(checker) = self.checker.as_mut() {
                    checker
                        .record_event(instruction, CheckEvent::MemPressure { held_frames: held });
                }
            }
        }
        Ok(())
    }

    /// A deterministic choice from the injector's seeded stream (0 when
    /// no injector is attached — callers only reach this through one).
    fn pick(&mut self, n: usize) -> usize {
        self.injector.as_mut().map_or(0, |i| i.pick(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig::quick("astar").design(L1DesignKind::Seesaw);
        let a = System::build(&cfg).unwrap().run().unwrap();
        let b = System::build(&cfg).unwrap().run().unwrap();
        assert_eq!(a.totals.cycles, b.totals.cycles);
        assert_eq!(a.l1.misses, b.l1.misses);
        assert_eq!(a.energy.total_nj(), b.energy.total_nj());
    }

    #[test]
    fn seesaw_beats_baseline_on_runtime_and_energy() {
        let base = System::build(&RunConfig::quick("redis")).unwrap().run().unwrap();
        let seesaw =
            System::build(&RunConfig::quick("redis").design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        assert!(
            seesaw.totals.cycles < base.totals.cycles,
            "SEESAW {} vs baseline {} cycles",
            seesaw.totals.cycles,
            base.totals.cycles
        );
        assert!(seesaw.energy.total_nj() < base.energy.total_nj());
        assert!(seesaw.runtime_improvement_pct(&base) > 0.0);
    }

    #[test]
    fn superpage_refs_dominate_unfragmented_runs() {
        let r = System::build(&RunConfig::quick("mongo").design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        assert!(
            r.superpage_ref_fraction > 0.7,
            "got {}",
            r.superpage_ref_fraction
        );
        assert!(r.superpage_coverage > 0.8);
    }

    #[test]
    fn fragmentation_reduces_coverage_and_benefit() {
        let frag = |pct| {
            System::build(
                &RunConfig::quick("olio")
                    .design(L1DesignKind::Seesaw)
                    .memhog(pct),
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let light = frag(0);
        let heavy = frag(85);
        assert!(
            heavy.superpage_coverage < light.superpage_coverage,
            "heavy {} vs light {}",
            heavy.superpage_coverage,
            light.superpage_coverage
        );
    }

    #[test]
    fn seesaw_never_regresses_without_superpages() {
        // With crushing fragmentation, SEESAW degenerates to the baseline
        // (slow path everywhere) but must not be slower than it.
        let cfg = RunConfig::quick("mcf").memhog(90);
        let base = System::build(&cfg).unwrap().run().unwrap();
        let seesaw = System::build(&cfg.design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        let delta = seesaw.runtime_improvement_pct(&base);
        assert!(delta > -1.0, "SEESAW regressed by {delta:.2}%");
    }

    #[test]
    fn inorder_gains_exceed_ooo_gains() {
        let gain = |cpu: CpuKind| {
            let base = System::build(&RunConfig::quick("tunk").cpu(cpu)).unwrap().run().unwrap();
            let seesaw =
                System::build(&RunConfig::quick("tunk").cpu(cpu).design(L1DesignKind::Seesaw))
                    .unwrap()
                    .run()
                    .unwrap();
            seesaw.runtime_improvement_pct(&base)
        };
        let ino = gain(CpuKind::InOrder);
        let ooo = gain(CpuKind::OutOfOrder);
        assert!(
            ino > ooo,
            "in-order gain {ino:.2}% must exceed out-of-order {ooo:.2}%"
        );
    }

    #[test]
    fn page_table_churn_stays_correct() {
        let mut cfg = RunConfig::quick("astar").design(L1DesignKind::Seesaw);
        cfg.page_op_interval = Some(20_000);
        let r = System::build(&cfg).unwrap().run().unwrap();
        // The run completes with sweeps recorded and sane stats.
        assert!(r.totals.instructions >= 150_000);
        assert!(r.seesaw.sweeps > 0 || r.tft.invalidations > 0);
    }

    #[test]
    fn pipt_design_runs() {
        let cfg = RunConfig::quick("xalanc").design(L1DesignKind::Pipt { ways: 4 });
        let r = System::build(&cfg).unwrap().run().unwrap();
        assert!(r.totals.cycles > 0);
        assert!(r.l1.accesses() > 0);
    }
}
