//! The run/step path of a full system: N cores (TLBs + L1 design +
//! workload stream) round-robin interleaved against one uncore (OS +
//! outer hierarchy + coherence + energy), driven by the CPU timing
//! models. Construction — design wiring, memory images, interned build
//! artifacts — lives in the private `build` module.

use seesaw_cache::{CacheStats, MemoryLevel, WayPredictionStats};
use seesaw_check::{
    AccessCheck, CheckEvent, CheckerSummary, FaultKind, InjectionStats, ViolationCounters,
};
use seesaw_core::{HitTimeAssumption, L1Request, L1Timing, SeesawStats, TftStats, VespaStats};
use seesaw_cpu::{CpuModel, InOrderCpu, OooCpu, RunTotals};

use seesaw_mem::{
    AddressSpace, MemError, Memhog, MemhogConfig, PageSize, PageTableOp, PhysAddr, VirtAddr,
};
use seesaw_tlb::{TlbLevel, TlbStats, WalkerStats};
use seesaw_trace::{
    Collect, EventKind, Log2Histogram, MetricsRegistry, NullSink, RingSink, Sink, TranslationLevel,
};
use seesaw_workloads::TraceRef;

use crate::build::{
    memory_image_key, stream_cache, warm_outer_cache, StreamArtifact, STREAM_CACHE_CAP,
    WARM_OUTER_CAP,
};
use crate::core::{Core, L1Flavor};
use crate::status::{ActiveProgress, NoProgress, Progress};
use crate::uncore::Uncore;
use seesaw_trace::ops::CellPhase;
use crate::{
    CoreResult, CpuKind, RunConfig, RunResult, SchedulerHintPolicy,
    SimError,
};

/// Events retained by the traced-run ring (the exact [`seesaw_trace::EventCounts`]
/// mirror counts every event regardless, so reconciliation survives wrap).
const TRACE_RING_CAPACITY: usize = 1 << 18;

/// Per-core per-window event counters.
#[derive(Debug, Default)]
struct Counters {
    super_refs: u64,
    total_refs: u64,
    coherence_probes: u64,
    /// Load-to-use cycles summed over L1 hits, with [`Counters::hits`]
    /// the divisor — the measured average hit latency the design-lab
    /// head-to-head reports (`l1.avg_hit_latency_cycles`).
    hit_cycles: u64,
    hits: u64,
    samples: Vec<crate::Sample>,
    miss_penalty: Log2Histogram,
}

/// Cumulative counters at a sampling-window boundary.
#[derive(Debug, Clone, Copy)]
struct SampleWindow {
    instructions: u64,
    cycles: u64,
    l1_accesses: u64,
    l1_misses: u64,
    l1_ways_probed: u64,
    tft_hits: u64,
    tft_misses: u64,
    walks: u64,
}

impl SampleWindow {
    fn capture<C: CpuModel>(core: &mut Core, cpu: &C) -> SampleWindow {
        let l1 = core.l1.as_dyn().cache_stats();
        let tft = match &mut core.l1 {
            L1Flavor::Seesaw(s) => s.tft_stats(),
            _ => TftStats::default(),
        };
        SampleWindow {
            instructions: cpu.instructions(),
            cycles: cpu.cycles(),
            l1_accesses: l1.accesses(),
            l1_misses: l1.misses,
            l1_ways_probed: l1.ways_probed,
            tft_hits: tft.hits,
            tft_misses: tft.misses,
            walks: core.tlbs.walker_stats().walks,
        }
    }

    /// Window deltas. `carry_tft_rate` is the previous window's TFT hit
    /// rate, reported unchanged when this window saw zero TFT lookups —
    /// a flat-lining series beats a misleading drop to 0.
    fn delta(&self, now: &SampleWindow, carry_tft_rate: f64) -> crate::Sample {
        let instructions = (now.instructions - self.instructions).max(1);
        let tft_lookups = (now.tft_hits - self.tft_hits) + (now.tft_misses - self.tft_misses);
        let accesses = now.l1_accesses - self.l1_accesses;
        crate::Sample {
            instructions: now.instructions,
            cpi: (now.cycles - self.cycles) as f64 / instructions as f64,
            mpki: (now.l1_misses - self.l1_misses) as f64 * 1000.0 / instructions as f64,
            tft_hit_rate: if tft_lookups == 0 {
                carry_tft_rate
            } else {
                (now.tft_hits - self.tft_hits) as f64 / tft_lookups as f64
            },
            walk_mpki: (now.walks - self.walks) as f64 * 1000.0 / instructions as f64,
            ways_per_access: if accesses == 0 {
                0.0
            } else {
                (now.l1_ways_probed - self.l1_ways_probed) as f64 / accesses as f64
            },
        }
    }
}

/// A fully assembled system, ready to run one workload.
///
/// Constructed by [`System::build`] (which lives in the private
/// `build` module); see the crate-level example for typical use.
pub struct System {
    pub(crate) config: RunConfig,
    pub(crate) timing: L1Timing,
    pub(crate) serializes_translation: bool,
    pub(crate) cores: Vec<Core>,
    pub(crate) uncore: Uncore,
}

impl System {
    /// Runs the configured instruction budget and reports the results.
    ///
    /// The run has two phases: a warmup (default: a third of the budget,
    /// capped at 500k instructions) that fills the caches, TLBs, and TFT
    /// without being measured — the paper's 10-billion-instruction traces
    /// make cold-start effects negligible, so measuring them here would
    /// distort every comparison — followed by the measured window, whose
    /// statistics are reported as deltas. Multi-core runs interleave the
    /// cores round-robin, one reference at a time, through both phases.
    ///
    /// # Errors
    /// Returns [`SimError::PageFault`] if the workload touches unmapped
    /// memory, and [`SimError::Check`] when the differential checker (if
    /// enabled) catches an invariant violation.
    pub fn run(self) -> Result<RunResult, SimError> {
        // The sink and the heartbeat probe are generic parameters of the
        // hot loop: the untraced path monomorphizes with `NullSink`
        // (every emit site compiles to nothing) and likewise the
        // unwatched path with `NoProgress`, so a plain run carries
        // neither. A supervised cell thread installs its heartbeat via
        // `status::set_cell_progress` before building the system; picking
        // it up from the thread-local here keeps `run`'s signature (and
        // every experiment driver above it) unchanged.
        match crate::status::current_cell_progress() {
            Some(cell) => {
                let progress = ActiveProgress::new(cell);
                if self.config.trace {
                    self.run_with_sink(RingSink::new(TRACE_RING_CAPACITY), progress)
                } else {
                    self.run_with_sink(NullSink, progress)
                }
            }
            None => {
                if self.config.trace {
                    self.run_with_sink(RingSink::new(TRACE_RING_CAPACITY), NoProgress)
                } else {
                    self.run_with_sink(NullSink, NoProgress)
                }
            }
        }
    }

    // Outlined so each sink instantiation stays a separate, compact
    // function: letting both the `NullSink` and `RingSink` bodies inline
    // into `run` fuses them into one oversized frame and degrades code
    // locality for the (hot) untraced path.
    #[inline(never)]
    fn run_with_sink<S: Sink, P: Progress>(
        mut self,
        mut sink: S,
        mut progress: P,
    ) -> Result<RunResult, SimError> {
        let n = self.cores.len();
        // Wall-clock per phase to stderr when SEESAW_PHASE_TIMING=1; the
        // profiling recipe in EXPERIMENTS.md builds on this.
        let phase_timing = std::env::var_os("SEESAW_PHASE_TIMING").is_some_and(|v| v == "1");
        let mut phase_clock = std::time::Instant::now();
        let mut phase_mark = |label: &str| {
            if phase_timing {
                eprintln!("[phase] {label} {:?}", phase_clock.elapsed());
                phase_clock = std::time::Instant::now();
            }
        };
        // Ops instrumentation shares `SEESAW_PHASE_TIMING`'s phase
        // boundaries: the heartbeat publishes the phase for live status,
        // and a traced run leaves the same boundaries as `phase` marker
        // events in the stream.
        if P::ENABLED {
            progress.set_phase(CellPhase::Prewarm);
        }
        if S::ENABLED {
            sink.emit(
                0,
                EventKind::Phase {
                    phase: CellPhase::Prewarm,
                },
            );
        }
        // Functional pre-warm in two interned stages. The paper measures
        // windows of traces that have been running for billions of
        // instructions, so the L2/LLC contents are in steady state;
        // without a prewarm, cold DRAM traffic would dominate the energy
        // of every design equally and mask the L1-level effects.
        //
        // Stage 1 — reference streams. Each core's prewarm stream is
        // synthesized in 64-reference batches, packed, and interned
        // process-wide by (workload, seed, core, count): a recurring cell
        // pays one Arc clone instead of re-running the mixture model's
        // RNG draws and `ln()` per reference. The warmup + measured loops
        // replay the same recording (Core::next_ref), so each reference
        // is synthesized exactly once per process and the spliced stream
        // is bit-identical to the generator's.
        let prewarm_refs = (self.config.instructions + self.config.instructions / 2) as usize;
        const PREWARM_CHUNK: usize = 64;
        for i in 0..n {
            let skey = format!(
                "{:?}|{}|{}|{}",
                self.config.workload, self.config.seed, i, prewarm_refs
            );
            let cached = stream_cache()
                .lock()
                .expect("stream cache lock")
                .get(&skey)
                .cloned();
            let art = match cached {
                Some(art) => art,
                None => {
                    let mut packed: Vec<u64> = Vec::with_capacity(prewarm_refs);
                    let mut scratch: Vec<TraceRef> = Vec::with_capacity(PREWARM_CHUNK);
                    while packed.len() < prewarm_refs {
                        scratch.clear();
                        let take = PREWARM_CHUNK.min(prewarm_refs - packed.len());
                        self.cores[i].generator.fill_refs(&mut scratch, take);
                        packed.extend(scratch.iter().map(|r| r.pack()));
                    }
                    let art = StreamArtifact {
                        refs: packed.into(),
                        generator: self.cores[i].generator.clone(),
                    };
                    let mut cache = stream_cache().lock().expect("stream cache lock");
                    if cache.len() >= STREAM_CACHE_CAP {
                        cache.clear();
                    }
                    cache.insert(skey, art.clone());
                    art
                }
            };
            self.cores[i].generator = art.generator;
            self.cores[i].replay = art.refs;
            self.cores[i].replay_cursor = 0;
        }

        // Stage 2 — functional pre-warm: replay each core's upcoming
        // stream against the outer hierarchy only (no timing, no energy,
        // no directory). The warmed outer state is interned by memory
        // image × cores × count × frequency × prefetch — the L1 plays no
        // part here, so one warmed image serves every L1 size and design
        // cell of a figure row as a straight clone.
        let wkey = format!(
            "{}|{}|{}|{:?}|{:?}",
            memory_image_key(&self.config),
            n,
            prewarm_refs,
            self.config.frequency,
            self.config.prefetch_degree
        );
        let warmed = warm_outer_cache()
            .lock()
            .expect("warm outer lock")
            .get(&wkey)
            .cloned();
        match warmed {
            Some(outer) => self.uncore.outer = outer,
            None => {
                for i in 0..n {
                    let stream = self.cores[i].replay.clone();
                    for &word in stream.iter() {
                        let r = TraceRef::unpack(word);
                        let va = self.uncore.vma.base().offset(r.offset);
                        if let Some(t) = self.cores[i].translate_cached(&self.uncore.space, va) {
                            self.uncore.outer.access(t.pa.raw() / 64, r.is_write);
                        }
                    }
                }
                let mut cache = warm_outer_cache().lock().expect("warm outer lock");
                if cache.len() >= WARM_OUTER_CAP {
                    cache.clear();
                }
                cache.insert(wkey, self.uncore.outer.clone());
            }
        }
        phase_mark("prewarm");

        let warmup = self
            .config
            .warmup_instructions
            .unwrap_or((self.config.instructions / 3).min(500_000));
        // Warmup: same loop, throwaway cores, no energy accounting, and
        // never traced — the measured window's events must reconcile with
        // the measured window's stat deltas. Directory state does warm:
        // probes flow between cores, they just go uncharged.
        let mut warm_cpus: Vec<InOrderCpu> = (0..n).map(|_| InOrderCpu::atom()).collect();
        let mut scratch: Vec<Counters> = (0..n).map(|_| Counters::default()).collect();
        if P::ENABLED {
            progress.set_phase(CellPhase::Warmup);
            // Heartbeat fractions are instructions-retired over this
            // target: both windows, across every core.
            progress.set_target(n as u64 * (warmup + self.config.instructions));
        }
        if S::ENABLED {
            sink.emit(
                0,
                EventKind::Phase {
                    phase: CellPhase::Warmup,
                },
            );
        }
        if let Err(e) = interleave(
            &self.config,
            self.timing,
            self.serializes_translation,
            &mut self.cores,
            &mut self.uncore,
            &mut warm_cpus,
            warmup,
            false,
            &mut scratch,
            &mut NullSink,
            &mut progress,
        ) {
            return Err(self.attach_repro(e, &sink));
        }

        phase_mark("warmup");
        if P::ENABLED {
            progress.set_phase(CellPhase::Measure);
        }
        if S::ENABLED {
            sink.emit(
                0,
                EventKind::Phase {
                    phase: CellPhase::Measure,
                },
            );
        }
        // Snapshot per-core counters at the start of the measured window.
        struct CoreBefore {
            l1: CacheStats,
            tlb: TlbStats,
            walker: WalkerStats,
            walk_hist: Log2Histogram,
            seesaw: SeesawStats,
            tft: TftStats,
            vespa: VespaStats,
            waypred: Option<WayPredictionStats>,
        }
        let before: Vec<CoreBefore> = self
            .cores
            .iter_mut()
            .map(|core| {
                let (seesaw, tft) = match &mut core.l1 {
                    L1Flavor::Seesaw(l) => (l.seesaw_stats(), l.tft_stats()),
                    _ => (SeesawStats::default(), TftStats::default()),
                };
                let vespa = match &core.l1 {
                    L1Flavor::Vespa(v) => v.vespa_stats(),
                    _ => VespaStats::default(),
                };
                CoreBefore {
                    l1: core.l1.as_dyn().cache_stats(),
                    tlb: core.tlbs.l1_stats(),
                    walker: core.tlbs.walker_stats(),
                    walk_hist: core.tlbs.walker_latency_hist(),
                    seesaw,
                    tft,
                    vespa,
                    waypred: core.l1.way_prediction_stats(),
                }
            })
            .collect();

        // Monomorphized per core model: the inner loop calls `retire`
        // directly instead of through a vtable.
        let mut counters: Vec<Counters> = (0..n).map(|_| Counters::default()).collect();
        let per_core_totals: Vec<RunTotals> = match self.config.cpu {
            CpuKind::InOrder => {
                let mut cpus: Vec<InOrderCpu> = (0..n).map(|_| InOrderCpu::atom()).collect();
                if let Err(e) = interleave(
                    &self.config,
                    self.timing,
                    self.serializes_translation,
                    &mut self.cores,
                    &mut self.uncore,
                    &mut cpus,
                    self.config.instructions,
                    true,
                    &mut counters,
                    &mut sink,
                    &mut progress,
                ) {
                    return Err(self.attach_repro(e, &sink));
                }
                cpus.iter().map(CpuModel::totals).collect()
            }
            CpuKind::OutOfOrder => {
                let mut cpus: Vec<OooCpu> = (0..n).map(|_| OooCpu::sandybridge()).collect();
                if let Err(e) = interleave(
                    &self.config,
                    self.timing,
                    self.serializes_translation,
                    &mut self.cores,
                    &mut self.uncore,
                    &mut cpus,
                    self.config.instructions,
                    true,
                    &mut counters,
                    &mut sink,
                    &mut progress,
                ) {
                    return Err(self.attach_repro(e, &sink));
                }
                cpus.iter().map(CpuModel::totals).collect()
            }
        };

        phase_mark("measured");
        // The run's makespan is the slowest core; work sums across cores.
        let totals = RunTotals {
            cycles: per_core_totals.iter().map(|t| t.cycles).max().unwrap_or(0),
            instructions: per_core_totals.iter().map(|t| t.instructions).sum(),
            squashes: per_core_totals.iter().map(|t| t.squashes).sum(),
        };
        let runtime_ns = totals.cycles as f64 / self.config.frequency.ghz();

        // Per-core measured-window deltas, then fieldwise aggregates
        // (every aggregate reduces to the lone core's delta when n = 1).
        let mut l1_stats = CacheStats::default();
        let mut tlb_stats = TlbStats::default();
        let mut walker_total = WalkerStats::default();
        let mut seesaw_stats = SeesawStats::default();
        let mut tft_stats = TftStats::default();
        let mut vespa_stats = VespaStats::default();
        let mut waypred_stats: Option<WayPredictionStats> = None;
        let mut walk_latency: Option<Log2Histogram> = None;
        let mut miss_penalty: Option<Log2Histogram> = None;
        let mut core_results: Vec<CoreResult> = Vec::with_capacity(n);
        for (i, core) in self.cores.iter_mut().enumerate() {
            let b = &before[i];
            let l1 = core.l1.as_dyn().cache_stats().delta(&b.l1);
            let (seesaw, tft, wp_acc) = match &mut core.l1 {
                L1Flavor::Seesaw(s) => (
                    s.seesaw_stats().delta(&b.seesaw),
                    s.tft_stats().delta(&b.tft),
                    s.way_prediction_accuracy(),
                ),
                L1Flavor::Baseline(bl) => (
                    SeesawStats::default(),
                    TftStats::default(),
                    bl.way_prediction_accuracy(),
                ),
                L1Flavor::MicroTag(m) => (
                    SeesawStats::default(),
                    TftStats::default(),
                    m.way_prediction_accuracy(),
                ),
                L1Flavor::Vivt(_) | L1Flavor::Vespa(_) => {
                    (SeesawStats::default(), TftStats::default(), None)
                }
            };
            if let L1Flavor::Vespa(v) = &core.l1 {
                add_vespa(&mut vespa_stats, &v.vespa_stats().delta(&b.vespa));
            }
            if let Some(now) = core.l1.way_prediction_stats() {
                let base = b.waypred.unwrap_or_default();
                let delta = WayPredictionStats {
                    hits: now.hits - base.hits,
                    mispredictions: now.mispredictions - base.mispredictions,
                    cold: now.cold - base.cold,
                    alias_mispredicts: now.alias_mispredicts - base.alias_mispredicts,
                };
                let total = waypred_stats.get_or_insert_with(WayPredictionStats::default);
                total.hits += delta.hits;
                total.mispredictions += delta.mispredictions;
                total.cold += delta.cold;
                total.alias_mispredicts += delta.alias_mispredicts;
            }
            let tlb = core.tlbs.l1_stats().delta(&b.tlb);
            let walker = core.tlbs.walker_stats().delta(&b.walker);
            let walk_hist = core.tlbs.walker_latency_hist().delta(&b.walk_hist);
            add_cache(&mut l1_stats, &l1);
            add_tlb(&mut tlb_stats, &tlb);
            add_walker(&mut walker_total, &walker);
            add_seesaw(&mut seesaw_stats, &seesaw);
            add_tft(&mut tft_stats, &tft);
            match walk_latency.as_mut() {
                Some(h) => h.merge(&walk_hist),
                None => walk_latency = Some(walk_hist),
            }
            match miss_penalty.as_mut() {
                Some(h) => h.merge(&counters[i].miss_penalty),
                None => miss_penalty = Some(counters[i].miss_penalty),
            }
            let ctr = &mut counters[i];
            core_results.push(CoreResult {
                core: core.id,
                totals: per_core_totals[i],
                l1,
                tlb_l1: tlb,
                walks: walker.walks,
                seesaw,
                tft,
                coherence_probes: ctr.coherence_probes,
                superpage_ref_fraction: if ctr.total_refs == 0 {
                    0.0
                } else {
                    ctr.super_refs as f64 / ctr.total_refs as f64
                },
                way_prediction_accuracy: wp_acc,
                faults: core.injector.as_ref().map(|inj| inj.stats()),
                checker: core.checker.as_ref().map(|c| c.summary()),
                samples: std::mem::take(&mut ctr.samples),
            });
        }
        let walk_latency = walk_latency.unwrap_or_default();
        let miss_penalty = miss_penalty.unwrap_or_default();
        let super_refs: u64 = counters.iter().map(|c| c.super_refs).sum();
        let total_refs: u64 = counters.iter().map(|c| c.total_refs).sum();
        let coherence_probes: u64 = counters.iter().map(|c| c.coherence_probes).sum();
        let faults = self.config.faults.is_some().then(|| {
            let mut total = InjectionStats::default();
            for r in &core_results {
                if let Some(f) = r.faults.as_ref() {
                    add_inject(&mut total, f);
                }
            }
            total
        });
        let checker = self.config.checker.then(|| {
            let mut total = CheckerSummary::default();
            for r in &core_results {
                if let Some(c) = r.checker.as_ref() {
                    add_checker(&mut total, c);
                }
            }
            total
        });
        let coherence = self.uncore.coherence.as_ref().map(|d| d.stats());
        // Dynamic energy accumulated globally during the interleave;
        // leakage charges every L1 instance for the makespan.
        let energy = self.uncore.account.finish_many(runtime_ns, n as u64);
        let trace = sink.finish();

        // One flat namespaced snapshot of every counter (the Collect
        // impls destructure their structs, so no field can be missing).
        let mut metrics = MetricsRegistry::new();
        totals.collect("cpu", &mut metrics);
        l1_stats.collect("l1", &mut metrics);
        miss_penalty.collect("l1.miss_penalty", &mut metrics);
        tlb_stats.collect("tlb.l1", &mut metrics);
        if let Some(l2) = self.cores[0].tlbs.l2_stats() {
            l2.collect("tlb.l2", &mut metrics);
        }
        walker_total.collect("tlb.walker", &mut metrics);
        walk_latency.collect("tlb.walk_latency", &mut metrics);
        seesaw_stats.collect("seesaw", &mut metrics);
        tft_stats.collect("tft", &mut metrics);
        if matches!(self.cores[0].l1, L1Flavor::Vespa(_)) {
            vespa_stats.collect("vespa", &mut metrics);
        }
        if let Some(wp) = waypred_stats.as_ref() {
            wp.collect("l1.waypred", &mut metrics);
        }
        {
            // Measured average load-to-use latency over L1 hits: the
            // head-to-head hit-latency column of the designs driver.
            let hits: u64 = counters.iter().map(|c| c.hits).sum();
            let cycles: u64 = counters.iter().map(|c| c.hit_cycles).sum();
            metrics.set_f64(
                "l1.avg_hit_latency_cycles",
                if hits == 0 {
                    0.0
                } else {
                    cycles as f64 / hits as f64
                },
            );
        }
        energy.collect("energy", &mut metrics);
        let (l2_cache, llc, dram_accesses, writebacks_received) = self.uncore.outer.stats();
        l2_cache.collect("outer.l2", &mut metrics);
        llc.collect("outer.llc", &mut metrics);
        metrics.set_u64("outer.dram_accesses", dram_accesses);
        metrics.set_u64("outer.writebacks_received", writebacks_received);
        if let Some(pf) = self.uncore.outer.prefetch_stats() {
            pf.collect("outer.prefetch", &mut metrics);
        }
        self.uncore.space.thp_stats().collect("os.thp", &mut metrics);
        self.uncore.pmem.stats().collect("os.buddy", &mut metrics);
        if let L1Flavor::Vivt(v) = &self.cores[0].l1 {
            v.synonym_stats().collect("vivt", &mut metrics);
        }
        if let Some(f) = faults.as_ref() {
            f.collect("faults", &mut metrics);
        }
        if let Some(c) = checker.as_ref() {
            c.collect("checker", &mut metrics);
        }
        if let Some(c) = coherence.as_ref() {
            c.collect("coherence", &mut metrics);
        }
        metrics.set_u64("coherence.probes", coherence_probes);
        metrics.set_f64("os.superpage_coverage", self.uncore.space.superpage_coverage());
        if n > 1 {
            for r in &core_results {
                let p = format!("core{}", r.core);
                r.totals.collect(&format!("{p}.cpu"), &mut metrics);
                r.l1.collect(&format!("{p}.l1"), &mut metrics);
                metrics.set_u64(&format!("{p}.coherence_probes"), r.coherence_probes);
            }
        }
        if let Some(t) = trace.as_ref() {
            t.counts.collect("trace.events", &mut metrics);
            metrics.set_u64("trace.dropped", t.dropped);
        }

        let result = RunResult {
            totals,
            runtime_ns,
            energy,
            l1: l1_stats,
            l1_mpki: l1_stats.mpki(totals.instructions),
            tlb_l1: tlb_stats,
            walks: walker_total.walks,
            seesaw: seesaw_stats,
            tft: tft_stats,
            superpage_coverage: self.uncore.space.superpage_coverage(),
            superpage_ref_fraction: if total_refs == 0 {
                0.0
            } else {
                super_refs as f64 / total_refs as f64
            },
            way_prediction_accuracy: core_results[0].way_prediction_accuracy,
            coherence_probes,
            demotions: self.uncore.space.thp_stats().demoted_slices + self.uncore.run_demotions,
            faults,
            checker,
            samples: core_results[0].samples.clone(),
            walk_latency,
            miss_penalty,
            metrics,
            trace,
            coherence,
            cores: core_results,
        };
        Ok(result)
    }

    /// Superpage coverage of the populated footprint (available before
    /// running — Fig. 3 only needs this).
    pub fn superpage_coverage(&self) -> f64 {
        self.uncore.space.superpage_coverage()
    }

    /// Packages a checker violation into a [`crate::ReproBundle`] and
    /// attaches it to the error, so every caller of [`System::run`] — the
    /// runner's worker pool included — gets a replayable artifact for
    /// free. Only [`SimError::Check`] from a fault-injected run qualifies:
    /// without an injector the run is already deterministic from its
    /// `RunConfig` alone and needs no schedule capture.
    fn attach_repro<S: Sink>(&self, err: SimError, sink: &S) -> SimError {
        let SimError::Check(mut v) = err else {
            return err;
        };
        if v.repro.is_none() {
            if let Some(fault) = self.config.faults {
                let core = self
                    .cores
                    .iter()
                    .position(|c| {
                        c.checker
                            .as_ref()
                            .is_some_and(|ch| ch.summary().violations.total() > 0)
                    })
                    .unwrap_or(0);
                let bundle = crate::repro::build_bundle(
                    &self.config,
                    fault,
                    &self.cores,
                    core,
                    &v,
                    sink.tail_jsonl(crate::repro::EVENT_TAIL_LINES),
                );
                v.autosaved = crate::repro::autosave(&bundle);
                v.repro = Some(Box::new(bundle));
            }
        }
        SimError::Check(v)
    }
}

/// Per-core interleave bookkeeping: one instance per core, replicating
/// the schedule state the single-core loop kept in locals.
struct Schedule {
    executed: u64,
    next_sample: u64,
    window: SampleWindow,
    last_tft_rate: f64,
    next_switch: u64,
    next_page_op: u64,
    page_op_toggle: bool,
}

/// Runs `instructions` instructions per core through the memory system,
/// round-robin one reference at a time so cross-core effects (coherence
/// probes, shootdowns, shared-page-table churn) land deterministically.
/// When `measure` is false (warmup), energy and probe counters are not
/// charged; hardware state (caches, TLBs, TFT, predictors, directory)
/// warms either way.
///
/// The sink is a compile-time parameter: every `if S::ENABLED` guard
/// below is a constant branch, so the untraced instantiation carries no
/// event-emission code at all. Kept out-of-line for code locality: one
/// call per window amortizes to nothing, while inlining four
/// instantiations into the caller bloats it past the instruction cache.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn interleave<C: CpuModel, S: Sink, P: Progress>(
    config: &RunConfig,
    timing: L1Timing,
    serializes_translation: bool,
    cores: &mut [Core],
    uncore: &mut Uncore,
    cpus: &mut [C],
    instructions: u64,
    measure: bool,
    counters: &mut [Counters],
    sink: &mut S,
    progress: &mut P,
) -> Result<(), SimError> {
    let miss_squash = OooCpu::sandybridge().miss_squash_cycles();
    let is_ooo = config.cpu == CpuKind::OutOfOrder;
    let is_seesaw = matches!(cores[0].l1, L1Flavor::Seesaw(_));
    let is_vivt = cores[0].l1.is_vivt();
    let line_bytes = 64u64;
    let n = cores.len();

    // Loop-invariant schedule periods, and the scheduler-hint
    // assumption for the stateless policies — `Occupancy` is the only
    // one that must consult the TLB, and only SEESAW hits on the
    // out-of-order core ever read the answer, so it is computed
    // lazily in that branch below.
    let sample_every = config.sample_interval.unwrap_or(u64::MAX);
    let switch_every = config.context_switch_interval.unwrap_or(u64::MAX);
    let page_op_every = config.page_op_interval.unwrap_or(u64::MAX);
    let static_assumption = match config.scheduler_hint {
        SchedulerHintPolicy::Occupancy => None,
        SchedulerHintPolicy::AlwaysFast => Some(HitTimeAssumption::Fast),
        SchedulerHintPolicy::AlwaysSlow => Some(HitTimeAssumption::Slow),
    };

    let mut sched: Vec<Schedule> = (0..n)
        .map(|i| Schedule {
            executed: 0,
            next_sample: if measure { sample_every } else { u64::MAX },
            window: SampleWindow::capture(&mut cores[i], &cpus[i]),
            last_tft_rate: 0.0,
            next_switch: switch_every,
            next_page_op: page_op_every,
            page_op_toggle: false,
        })
        .collect();

    // `stop_at_instruction` cuts each core's budget at a *global*
    // executed-instruction count (warmup + measured), so the shrinker can
    // halt a replay right after its violation. `elapsed` carries the
    // instructions from earlier phases.
    let limits: Vec<u64> = match config.stop_at_instruction {
        Some(stop) => cores
            .iter()
            .map(|c| instructions.min(stop.saturating_sub(c.elapsed)))
            .collect(),
        None => vec![instructions; n],
    };

    loop {
        let mut alive = false;
        for i in 0..n {
            if sched[i].executed >= limits[i] {
                continue;
            }
            alive = true;
            if S::ENABLED {
                sink.set_core(i as u16);
            }

            // --- Core-private portion: this core's reference against its
            // own TLBs and L1, with the shared outer hierarchy behind its
            // misses. Identical, statement for statement, to the
            // single-core loop this replaces.
            let (at, va, pa, is_write) = {
                let st = &mut sched[i];
                let core = &mut cores[i];
                let cpu = &mut cpus[i];
                let ctr = &mut counters[i];

                let tref = core.next_ref();
                let va = uncore.vma.base().offset(tref.offset);
                let at = core.elapsed + st.executed;

                // Translation (parallel with cache indexing for V-indexed L1s).
                let lookup = core
                    .tlbs
                    .lookup(va, &uncore.space)
                    .ok_or(SimError::PageFault { va: va.raw() })?;
                if S::ENABLED {
                    let level = match lookup.level {
                        TlbLevel::L1 => TranslationLevel::L1,
                        TlbLevel::L2 => TranslationLevel::L2,
                        TlbLevel::PageWalk => TranslationLevel::Walk,
                    };
                    sink.emit(at, EventKind::TlbLookup { level });
                    if lookup.level == TlbLevel::PageWalk {
                        sink.emit(
                            at,
                            EventKind::WalkEnd {
                                cycles: lookup.cost_cycles as u32,
                                superpage: lookup.entry.size.is_superpage(),
                            },
                        );
                    }
                }
                // VIVT hits never consult the TLB; its translation energy is
                // charged below, only for misses.
                if measure && !is_vivt {
                    uncore.account.tlb_l1();
                    match lookup.level {
                        TlbLevel::L1 => {}
                        TlbLevel::L2 => uncore.account.tlb_l2(),
                        TlbLevel::PageWalk => {
                            uncore.account.tlb_l2();
                            uncore.account.page_walk();
                        }
                    }
                }
                if let Some(seesaw) = core.l1.seesaw() {
                    for page in &lookup.superpage_l1_fills {
                        seesaw.tft_fill(page.base());
                        if S::ENABLED {
                            sink.emit(at, EventKind::TftFill);
                        }
                    }
                }

                let pa = lookup.entry.translate(va);
                let page_size = lookup.entry.size;
                if page_size.is_superpage() {
                    ctr.super_refs += 1;
                }
                ctr.total_refs += 1;

                let req = L1Request {
                    va,
                    pa,
                    page_size,
                    is_write: tref.is_write,
                };
                let out = core.l1.as_dyn().access(&req);
                if S::ENABLED {
                    if let Some(hit) = out.tft_hit {
                        sink.emit(at, EventKind::TftLookup { hit });
                    }
                    sink.emit(
                        at,
                        EventKind::PartitionLookup {
                            ways_probed: out.ways_probed.min(u8::MAX as usize) as u8,
                            hit: out.hit,
                        },
                    );
                }

                // Differential shadow check: the hardware's translation and
                // TFT verdict against the page table's ground truth and the
                // program's reference memory.
                if core.checker.is_some() {
                    let authoritative = core
                        .translate_cached(&uncore.space, va)
                        .ok_or(SimError::PageFault { va: va.raw() })?;
                    let checker = core.checker.as_mut().expect("checked above");
                    if let Err(v) = checker.check_access(
                        at,
                        &AccessCheck {
                            va: va.raw(),
                            pa: pa.raw(),
                            authoritative_pa: authoritative.pa.raw(),
                            is_superpage: authoritative.page_size.is_superpage(),
                            tft_hit: out.tft_hit,
                            is_write: tref.is_write,
                        },
                    ) {
                        if S::ENABLED {
                            sink.emit(at, EventKind::Violation { kind: v.kind.name() });
                        }
                        return Err(v.into());
                    }
                    // A µtag hit served without tag verification (the
                    // `skip_way_verification` chaos knob) may have returned
                    // the wrong way's data: audit it as an alias violation.
                    if let Some(way) = out.unverified_alias_way {
                        if let Err(v) = checker.audit_way_prediction(at, va.raw(), way, false) {
                            if S::ENABLED {
                                sink.emit(at, EventKind::Violation { kind: v.kind.name() });
                            }
                            return Err(v.into());
                        }
                    }
                }

                let mut squash_cycles = 0u64;
                if is_seesaw {
                    if measure {
                        uncore.account.tft_lookup();
                    }
                    // Refresh on confirmation: when the TFT missed but the TLB
                    // (which hit a 2 MB entry) proves the access is a
                    // superpage, re-mark the region. The paper only draws the
                    // TLB-fill arrows in Fig. 5, but the information is
                    // already at the TFT's write port, and without the refresh
                    // a direct-mapped conflict pair would stay cold between
                    // TLB misses.
                    if out.tft_hit == Some(false) && page_size.is_superpage() {
                        if let Some(seesaw) = core.l1.seesaw() {
                            seesaw.tft_fill(va);
                            if S::ENABLED {
                                sink.emit(at, EventKind::TftFill);
                            }
                        }
                    }
                }
                if measure {
                    uncore.account.cpu_lookup(out.ways_probed);
                }

                // Assemble load-to-use latency.
                let mut latency = if serializes_translation {
                    // PIPT: the TLB access (2 cycles for an L1 TLB hit, plus
                    // any miss cost) fully precedes the array access.
                    2 + lookup.cost_cycles + out.latency_cycles
                } else if is_vivt {
                    // VIVT: hits are translation-free; misses translate on the
                    // way to the L2 (added below with the miss cost).
                    out.latency_cycles
                } else {
                    // VIPT: set selection overlaps translation; the tag
                    // compare waits for the (possibly slow) translation.
                    out.latency_cycles.max(lookup.cost_cycles + 1)
                };

                if !out.hit {
                    let ptag = pa.raw() / line_bytes;
                    let (level, miss_cycles) = uncore.outer.access(ptag, req.is_write);
                    if measure {
                        ctr.miss_penalty.record(miss_cycles);
                    }
                    if is_vivt {
                        // The translation VIVT deferred happens on the miss path.
                        latency += lookup.cost_cycles + 1;
                        if measure {
                            uncore.account.tlb_l1();
                            if lookup.level != TlbLevel::L1 {
                                uncore.account.tlb_l2();
                            }
                            if lookup.level == TlbLevel::PageWalk {
                                uncore.account.page_walk();
                            }
                        }
                    }
                    if measure {
                        uncore.account.l2_access();
                        if level >= MemoryLevel::Llc {
                            uncore.account.llc_access();
                        }
                        if level == MemoryLevel::Dram {
                            uncore.account.dram_access();
                        }
                        uncore.account.l1_fill();
                    }
                    latency += miss_cycles;
                    // Loads are speculatively scheduled as hits on any OoO
                    // design; a miss squashes dependents (equally for the
                    // baseline and SEESAW).
                    if is_ooo {
                        squash_cycles = miss_squash;
                    }
                    if let Some(evicted) = out.evicted {
                        if evicted.dirty {
                            uncore.outer.writeback(evicted.ptag);
                            if measure {
                                uncore.account.l2_access();
                            }
                        }
                    }
                } else if is_ooo && is_seesaw {
                    // Scheduler hit-time assumption (§IV-B3): only meaningful
                    // for SEESAW hits on the out-of-order core, so the
                    // occupancy query runs here rather than once per
                    // reference. Nothing between the TLB lookup above and this
                    // point mutates the TLB, so the answer is the one the
                    // per-reference query produced.
                    let assumption = static_assumption.unwrap_or_else(|| {
                        let (valid, cap) = core.tlbs.superpage_l1_occupancy();
                        core.hint.assumption(valid, cap)
                    });
                    match assumption {
                        HitTimeAssumption::Fast => {
                            // The TFT answers within a quarter cycle (§IV-A2),
                            // so a base-page discovery re-schedules dependents
                            // before they issue: by default that costs nothing
                            // (configurable, to study deeper pipelines).
                            if !out.fast_assumption_held {
                                squash_cycles = config.hit_time_squash_cycles;
                            }
                        }
                        HitTimeAssumption::Slow => {
                            // Dependents were scheduled for the slow time; a
                            // fast hit completes early without helping.
                            latency = latency.max(timing.slow_cycles);
                        }
                    }
                }
                // A way-predictor mispredict replays the dependents that woke
                // for the predicted-way hit time.
                if is_ooo && out.way_prediction_correct == Some(false) {
                    squash_cycles = squash_cycles.max(2);
                }
                if measure && out.hit {
                    ctr.hits += 1;
                    ctr.hit_cycles += latency;
                }

                cpu.retire(tref.gap, latency, squash_cycles);
                st.executed += tref.gap + 1;
                if P::ENABLED {
                    progress.add(tref.gap + 1);
                }

                // Synthetic coherence probes that arrived during this window
                // (the cores = 1 fallback; absent when the directory below
                // generates the real thing).
                if let Some(traffic) = core.traffic.as_mut() {
                    traffic.record_line(pa.raw() / line_bytes);
                    for probe in traffic.step(tref.gap + 1) {
                        let (_, ways) = core.l1.as_dyn().coherence_probe(
                            PhysAddr::new(probe.ptag * line_bytes),
                            probe.invalidate,
                        );
                        if S::ENABLED {
                            sink.emit(
                                at,
                                EventKind::CoherenceProbe {
                                    ways_probed: ways.min(u8::MAX as usize) as u8,
                                    invalidate: probe.invalidate,
                                },
                            );
                        }
                        if measure {
                            uncore.account.coherence_lookup(ways);
                            ctr.coherence_probes += 1;
                        }
                    }
                }

                (at, va, pa, tref.is_write)
            };

            // --- Real coherence: this reference announces itself to the
            // directory (or snoopy bus), and every resulting probe lands in
            // the peer timing L1 it targets — no synthetic traffic at all.
            let ptag = pa.raw() / line_bytes;
            if let Some(tx) = uncore
                .coherence
                .as_mut()
                .map(|dir| dir.access(i, ptag, is_write))
            {
                for p in tx.probes {
                    let (_, ways) = cores[p.target]
                        .l1
                        .as_dyn()
                        .coherence_probe(PhysAddr::new(ptag * line_bytes), p.invalidate);
                    if S::ENABLED {
                        // The probe is the target core's event; the timeline
                        // position is the initiator's, which is when it fired.
                        sink.set_core(p.target as u16);
                        sink.emit(
                            at,
                            EventKind::CoherenceProbe {
                                ways_probed: ways.min(u8::MAX as usize) as u8,
                                invalidate: p.invalidate,
                            },
                        );
                        sink.set_core(i as u16);
                    }
                    if p.writeback {
                        uncore.outer.writeback(ptag);
                        if measure {
                            uncore.account.l2_access();
                        }
                    }
                    if measure {
                        uncore.account.coherence_lookup(ways);
                        counters[p.target].coherence_probes += 1;
                    }
                }
            }

            // Telemetry window boundary.
            if sched[i].executed >= sched[i].next_sample {
                sched[i].next_sample += sample_every;
                let now = SampleWindow::capture(&mut cores[i], &cpus[i]);
                let sample = sched[i].window.delta(&now, sched[i].last_tft_rate);
                sched[i].last_tft_rate = sample.tft_hit_rate;
                counters[i].samples.push(sample);
                sched[i].window = now;
            }

            // Context switches flush the (ASID-less) TFT.
            if sched[i].executed >= sched[i].next_switch {
                sched[i].next_switch += switch_every;
                if S::ENABLED {
                    sink.emit(at, EventKind::ContextSwitch);
                }
                if let Some(seesaw) = cores[i].l1.seesaw() {
                    seesaw.context_switch();
                    if S::ENABLED {
                        sink.emit(at, EventKind::TftFlush);
                    }
                }
                // The µtag is virtually tagged without ASIDs, so a context
                // switch flushes the predictor (Zen2 erratum-style behavior)
                // — every prediction goes cold, data stays resident.
                if let L1Flavor::MicroTag(m) = &mut cores[i].l1 {
                    m.context_switch();
                }
            }

            // Legacy OS page-table churn schedule: a deterministic
            // splinter/re-promote alternation at a fixed interval, routed
            // through the same fault-application path as the injector.
            if sched[i].executed >= sched[i].next_page_op {
                sched[i].next_page_op += page_op_every;
                let now_at = cores[i].elapsed + sched[i].executed;
                let promote = sched[i].page_op_toggle;
                apply_page_op(cores, uncore, i, va, promote, now_at, sink)?;
                sched[i].page_op_toggle = !sched[i].page_op_toggle;
            }

            // Randomized fault injection (the general mechanism).
            let now_at = cores[i].elapsed + sched[i].executed;
            if let Some(kind) = cores[i].injector.as_mut().and_then(|inj| inj.poll(now_at)) {
                apply_fault(config, cores, uncore, i, kind, now_at, sink)?;
            }
        }
        if !alive {
            break;
        }
    }
    for (core, st) in cores.iter_mut().zip(&sched) {
        core.elapsed += st.executed;
    }
    if P::ENABLED {
        progress.flush();
    }
    Ok(())
}

/// Splinters (or re-promotes) the 2 MB region containing `va`,
/// delivering the invalidation events to every core's TLBs — the page
/// table is shared, so a change on one core is a shootdown on all —
/// and to every L1 design that must observe them, mirroring the
/// transition into each core's shadow model and running the structural
/// audits. Shared by the legacy `page_op_interval` schedule and the
/// fault injector.
///
/// A promotion that fails for lack of contiguous physical memory is
/// graceful degradation, not an error: the region stays base-paged and
/// the demotion is counted.
fn apply_page_op<S: Sink>(
    cores: &mut [Core],
    uncore: &mut Uncore,
    initiator: usize,
    va: VirtAddr,
    promote: bool,
    instruction: u64,
    sink: &mut S,
) -> Result<(), SimError> {
    // The shared page table is about to change shape; no core's
    // interned translations may serve a stale mapping.
    for core in cores.iter_mut() {
        core.xlate.invalidate();
    }
    let result = if promote {
        uncore.space.promote(&mut uncore.pmem, va)
    } else {
        uncore.space.splinter(&mut uncore.pmem, va)
    };
    match result {
        Ok(_) => {}
        Err(MemError::Fragmented { .. } | MemError::OutOfMemory { .. }) if promote => {
            uncore.run_demotions += 1;
            let region = VirtAddr::new(va.raw() & !(PageSize::Super2M.bytes() - 1));
            if S::ENABLED {
                sink.emit(
                    instruction,
                    EventKind::Demotion {
                        region_va: region.raw(),
                    },
                );
            }
            for core in cores.iter_mut() {
                if let Some(checker) = core.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::PromotionDemoted {
                            region_va: region.raw(),
                        },
                    );
                }
            }
            return Ok(());
        }
        // The region is not currently in the right state (already
        // splintered / already promoted / outside the heap): benign.
        Err(_) => return Ok(()),
    }
    let chaos = cores[initiator]
        .injector
        .as_ref()
        .map(|i| i.config().chaos)
        .unwrap_or_default();
    for op in uncore.space.drain_ops() {
        // A real shootdown: every core's TLBs observe the invalidation.
        for core in cores.iter_mut() {
            core.tlbs.handle_op(&op);
        }
        if S::ENABLED {
            match &op {
                PageTableOp::Splintered(page) => sink.emit(
                    instruction,
                    EventKind::Splinter {
                        region_va: page.base().raw(),
                    },
                ),
                PageTableOp::Promoted { page, .. } => sink.emit(
                    instruction,
                    EventKind::Promotion {
                        region_va: page.base().raw(),
                    },
                ),
                PageTableOp::Unmapped(page) => sink.emit(
                    instruction,
                    EventKind::Shootdown {
                        page_va: page.base().raw(),
                    },
                ),
                PageTableOp::Mapped(_) => {}
            }
        }
        // ChaosConfig knobs deliberately lose the L1-side invalidation
        // so tests can prove the checker catches the corruption.
        let dropped = match &op {
            PageTableOp::Splintered(_) => chaos.drop_tft_invalidation_on_splinter,
            PageTableOp::Promoted { .. } => chaos.drop_promotion_sweep,
            _ => false,
        };
        for core in cores.iter_mut() {
            match &mut core.l1 {
                L1Flavor::Seesaw(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                // VIVT must always observe remappings: its virtual tags
                // keep hitting after a translation change, and its
                // back-pointers would keep naming the migrated-away frames.
                L1Flavor::Vivt(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                // VESPA sweeps promoted regions exactly as SEESAW does
                // (partition residency is a correctness invariant for its
                // always-fast superpage lookups).
                L1Flavor::Vespa(l1) if !dropped => {
                    l1.handle_op(&op);
                }
                _ => {}
            }
        }
        for core in cores.iter_mut() {
            if let Err(e) = observe_op(core, &uncore.space, &op, instruction) {
                if S::ENABLED {
                    if let SimError::Check(v) = &e {
                        sink.emit(instruction, EventKind::Violation { kind: v.kind.name() });
                    }
                }
                return Err(e);
            }
        }
    }
    if promote {
        // Promotion copies the region into the new 2 MB frame; the
        // kernel's copy streams through the cache hierarchy, so the
        // new frame's lines are LLC-resident afterwards.
        if let Some(t) = uncore.space.translate(va) {
            let first = t.frame.base().raw() / 64;
            let lines = PageSize::Super2M.bytes() / 64;
            for line in first..first + lines {
                uncore.outer.access(line, true);
            }
        }
    }
    Ok(())
}

/// Mirrors one page-table operation into one core's shadow model and
/// runs the structural audits that must hold immediately afterwards.
fn observe_op(
    core: &mut Core,
    space: &AddressSpace,
    op: &PageTableOp,
    instruction: u64,
) -> Result<(), SimError> {
    if core.checker.is_none() {
        return Ok(());
    }
    match op {
        PageTableOp::Splintered(page) => {
            let region_va = page.base().raw();
            if let Some(checker) = core.checker.as_mut() {
                checker.observe_splinter(instruction, region_va);
            }
            // §IV-C2 precision: the TFT must no longer vouch for the
            // splintered region.
            if let L1Flavor::Seesaw(l1) = &core.l1 {
                let still_vouches = l1.tft_probe(page.base());
                if let Some(checker) = core.checker.as_mut() {
                    checker.audit_splinter_tft(instruction, region_va, still_vouches)?;
                }
            }
        }
        PageTableOp::Promoted { page, old_frames } => {
            let region_va = page.base().raw();
            let new_frame = space
                .translate(page.base())
                .map(|t| t.frame.base().raw())
                .unwrap_or(0);
            // old_frames arrive in VA order: frame i backs region
            // offset i × 4 KB.
            let frames: Vec<(u64, u64, u64)> = old_frames
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    (
                        f.base().raw(),
                        f.size().bytes(),
                        i as u64 * PageSize::Base4K.bytes(),
                    )
                })
                .collect();
            if let Some(checker) = core.checker.as_mut() {
                checker.observe_promotion(instruction, region_va, new_frame, &frames);
            }
            match &core.l1 {
                L1Flavor::Seesaw(l1) => {
                    // No line of the migrated-away frames may survive
                    // the promotion sweep.
                    let mut ranges: Vec<(u64, u64)> = old_frames
                        .iter()
                        .map(|f| {
                            let first = f.base().raw() / 64;
                            (first, first + f.size().bytes() / 64)
                        })
                        .collect();
                    ranges.sort_unstable();
                    let resident = l1
                        .resident_lines()
                        .filter(|line| {
                            ranges
                                .binary_search_by(|&(lo, hi)| {
                                    if line.ptag < lo {
                                        std::cmp::Ordering::Greater
                                    } else if line.ptag >= hi {
                                        std::cmp::Ordering::Less
                                    } else {
                                        std::cmp::Ordering::Equal
                                    }
                                })
                                .is_ok()
                        })
                        .count();
                    let unreachable = l1.audit_partition_reachability();
                    if let Some(checker) = core.checker.as_mut() {
                        checker.audit_promotion_sweep(instruction, region_va, resident)?;
                        // §IV-C1: every resident line must sit in the
                        // partition its physical address names.
                        if let Some(unreachable) = unreachable {
                            checker.audit_partitions(instruction, unreachable)?;
                        }
                    }
                }
                L1Flavor::Vespa(l1) => {
                    // Same residency + reachability contract as SEESAW:
                    // the sweep must clear every line of the migrated-away
                    // frames, and each survivor must sit in the partition
                    // its physical address names.
                    let mut ranges: Vec<(u64, u64)> = old_frames
                        .iter()
                        .map(|f| {
                            let first = f.base().raw() / 64;
                            (first, first + f.size().bytes() / 64)
                        })
                        .collect();
                    ranges.sort_unstable();
                    let resident = l1
                        .resident_lines()
                        .filter(|line| {
                            ranges
                                .binary_search_by(|&(lo, hi)| {
                                    if line.ptag < lo {
                                        std::cmp::Ordering::Greater
                                    } else if line.ptag >= hi {
                                        std::cmp::Ordering::Less
                                    } else {
                                        std::cmp::Ordering::Equal
                                    }
                                })
                                .is_ok()
                        })
                        .count();
                    let unreachable = l1.audit_partition_reachability();
                    if let Some(checker) = core.checker.as_mut() {
                        checker.audit_promotion_sweep(instruction, region_va, resident)?;
                        if let Some(unreachable) = unreachable {
                            checker.audit_partitions(instruction, unreachable)?;
                        }
                    }
                }
                L1Flavor::Vivt(l1) => {
                    // VIVT back-pointers must not reference the frames
                    // the promotion freed.
                    let plines: Vec<u64> = l1.mapped_plines().collect();
                    if let Some(checker) = core.checker.as_mut() {
                        checker.audit_physical_mappings(instruction, plines)?;
                    }
                }
                L1Flavor::Baseline(_) | L1Flavor::MicroTag(_) => {}
            }
        }
        PageTableOp::Unmapped(page) => {
            if let Some(checker) = core.checker.as_mut() {
                checker.record_event(
                    instruction,
                    CheckEvent::Shootdown {
                        page_va: page.base().raw(),
                    },
                );
            }
        }
        PageTableOp::Mapped(_) => {}
    }
    Ok(())
}

/// Applies one fault injected on `initiator`'s schedule. Globally
/// visible faults (page-table reshapes, shootdowns, memory pressure)
/// broadcast to every core; core-local ones (TFT storms, context
/// switches) stay on the initiator.
fn apply_fault<S: Sink>(
    config: &RunConfig,
    cores: &mut [Core],
    uncore: &mut Uncore,
    initiator: usize,
    kind: FaultKind,
    instruction: u64,
    sink: &mut S,
) -> Result<(), SimError> {
    // Every fault kind may reshape translations (splinters,
    // promotions, pressure-driven remaps); drop the interned
    // translations wholesale rather than reason per-kind.
    for core in cores.iter_mut() {
        core.xlate.invalidate();
    }
    if S::ENABLED {
        sink.emit(instruction, EventKind::Fault { kind: kind.name() });
    }
    for core in cores.iter_mut() {
        if let Some(checker) = core.checker.as_mut() {
            checker.record_event(instruction, CheckEvent::Injected(kind));
        }
    }
    let footprint = config.workload.footprint_bytes();
    let regions = (footprint / PageSize::Super2M.bytes()).max(1) as usize;
    match kind {
        FaultKind::Splinter | FaultKind::Promote => {
            let region = pick(&mut cores[initiator], regions);
            let va = uncore
                .vma
                .base()
                .offset(region as u64 * PageSize::Super2M.bytes());
            apply_page_op(
                cores,
                uncore,
                initiator,
                va,
                kind == FaultKind::Promote,
                instruction,
                sink,
            )?;
        }
        FaultKind::TlbShootdown => {
            // A spurious shootdown: the TLBs — all of them, the page
            // table is shared — drop a mapping it still holds. Harmless
            // by design — the next access refills from the (unchanged)
            // page table — and exactly the event a stale-translation bug
            // would hide behind.
            let pages = (footprint / PageSize::Base4K.bytes()).max(1) as usize;
            let page = pick(&mut cores[initiator], pages);
            let va = uncore
                .vma
                .base()
                .offset(page as u64 * PageSize::Base4K.bytes());
            if let Some(t) = uncore.space.translate(va) {
                let op = PageTableOp::Unmapped(t.vpage);
                for core in cores.iter_mut() {
                    core.tlbs.handle_op(&op);
                }
                if S::ENABLED {
                    sink.emit(
                        instruction,
                        EventKind::Shootdown {
                            page_va: t.vpage.base().raw(),
                        },
                    );
                }
                for core in cores.iter_mut() {
                    if let Some(checker) = core.checker.as_mut() {
                        checker.record_event(
                            instruction,
                            CheckEvent::Shootdown {
                                page_va: t.vpage.base().raw(),
                            },
                        );
                    }
                }
            }
        }
        FaultKind::TftStorm => {
            // Conflict-alias the initiator's direct-mapped TFT with fills
            // for many genuinely superpage-backed regions, forcing
            // evictions of live entries. Base-paged regions are never
            // filled — that would be injecting the very bug the TFT's
            // precision invariant forbids.
            for _ in 0..16 {
                let region = pick(&mut cores[initiator], regions);
                let va = uncore
                    .vma
                    .base()
                    .offset(region as u64 * PageSize::Super2M.bytes());
                let backed_super = uncore
                    .space
                    .translate(va)
                    .is_some_and(|t| t.page_size.is_superpage());
                if backed_super {
                    if let Some(seesaw) = cores[initiator].l1.seesaw() {
                        seesaw.tft_fill(va);
                        if S::ENABLED {
                            sink.emit(instruction, EventKind::TftFill);
                        }
                    }
                }
            }
        }
        FaultKind::ContextSwitch => {
            if S::ENABLED {
                sink.emit(instruction, EventKind::ContextSwitch);
            }
            if let Some(seesaw) = cores[initiator].l1.seesaw() {
                seesaw.context_switch();
                if S::ENABLED {
                    sink.emit(instruction, EventKind::TftFlush);
                }
            }
            if let L1Flavor::MicroTag(m) = &mut cores[initiator].l1 {
                m.context_switch();
            }
            if let Some(checker) = cores[initiator].checker.as_mut() {
                checker.record_event(instruction, CheckEvent::ContextSwitch);
            }
        }
        FaultKind::MemPressure => {
            // A fresh co-runner grabs a slice of physical memory,
            // fragmenting the free lists (Memhog instances are
            // single-use, so each pressure event gets its own).
            let seed = config.seed ^ (pick(&mut cores[initiator], 1 << 30) as u64);
            let mut hog = Memhog::new(MemhogConfig {
                fraction: 0.05,
                unmovable_fraction: 0.0,
                churn_factor: 0.0,
                seed,
            });
            hog.run(&mut uncore.pmem);
            let held: u64 = uncore.pressure_hogs.iter().map(Memhog::held_frames).sum();
            for core in cores.iter_mut() {
                if let Some(checker) = core.checker.as_mut() {
                    checker.record_event(
                        instruction,
                        CheckEvent::MemPressure {
                            held_frames: held + hog.held_frames(),
                        },
                    );
                }
            }
            uncore.pressure_hogs.push(hog);
        }
        FaultKind::MemRelease => {
            if let Some(mut hog) = uncore.pressure_hogs.pop() {
                hog.release(&mut uncore.pmem);
            }
            let held: u64 = uncore.pressure_hogs.iter().map(Memhog::held_frames).sum();
            for core in cores.iter_mut() {
                if let Some(checker) = core.checker.as_mut() {
                    checker.record_event(instruction, CheckEvent::MemPressure { held_frames: held });
                }
            }
        }
    }
    Ok(())
}

/// A deterministic choice from the core's seeded injector stream (0 when
/// no injector is attached — callers only reach this through one).
fn pick(core: &mut Core, n: usize) -> usize {
    core.injector.as_mut().map_or(0, |i| i.pick(n))
}

fn add_cache(total: &mut CacheStats, s: &CacheStats) {
    let CacheStats {
        hits,
        misses,
        fills,
        evictions,
        writebacks,
        ways_probed,
        coherence_probes,
        coherence_ways_probed,
        coherence_invalidations,
    } = *s;
    total.hits += hits;
    total.misses += misses;
    total.fills += fills;
    total.evictions += evictions;
    total.writebacks += writebacks;
    total.ways_probed += ways_probed;
    total.coherence_probes += coherence_probes;
    total.coherence_ways_probed += coherence_ways_probed;
    total.coherence_invalidations += coherence_invalidations;
}

fn add_tlb(total: &mut TlbStats, s: &TlbStats) {
    let TlbStats {
        hits,
        misses,
        fills,
        evictions,
        invalidations,
        flushes,
    } = *s;
    total.hits += hits;
    total.misses += misses;
    total.fills += fills;
    total.evictions += evictions;
    total.invalidations += invalidations;
    total.flushes += flushes;
}

fn add_walker(total: &mut WalkerStats, s: &WalkerStats) {
    let WalkerStats {
        walks,
        cycles,
        faults,
    } = *s;
    total.walks += walks;
    total.cycles += cycles;
    total.faults += faults;
}

fn add_seesaw(total: &mut SeesawStats, s: &SeesawStats) {
    let SeesawStats {
        super_tft_hit_cache_hit,
        super_tft_hit_cache_miss,
        super_tft_miss,
        base_page,
        super_tft_miss_l1_miss,
        sweeps,
        swept_lines,
    } = *s;
    total.super_tft_hit_cache_hit += super_tft_hit_cache_hit;
    total.super_tft_hit_cache_miss += super_tft_hit_cache_miss;
    total.super_tft_miss += super_tft_miss;
    total.base_page += base_page;
    total.super_tft_miss_l1_miss += super_tft_miss_l1_miss;
    total.sweeps += sweeps;
    total.swept_lines += swept_lines;
}

fn add_vespa(total: &mut VespaStats, s: &VespaStats) {
    let VespaStats {
        super_fast_hits,
        super_fast_misses,
        base_accesses,
        wasted_probe_ways,
        sweeps,
        swept_lines,
    } = *s;
    total.super_fast_hits += super_fast_hits;
    total.super_fast_misses += super_fast_misses;
    total.base_accesses += base_accesses;
    total.wasted_probe_ways += wasted_probe_ways;
    total.sweeps += sweeps;
    total.swept_lines += swept_lines;
}

fn add_tft(total: &mut TftStats, s: &TftStats) {
    let TftStats {
        hits,
        misses,
        fills,
        invalidations,
        flushes,
    } = *s;
    total.hits += hits;
    total.misses += misses;
    total.fills += fills;
    total.invalidations += invalidations;
    total.flushes += flushes;
}

fn add_inject(total: &mut InjectionStats, s: &InjectionStats) {
    let InjectionStats {
        splinters,
        promotions,
        shootdowns,
        tft_storms,
        context_switches,
        mem_pressure,
        mem_releases,
    } = *s;
    total.splinters += splinters;
    total.promotions += promotions;
    total.shootdowns += shootdowns;
    total.tft_storms += tft_storms;
    total.context_switches += context_switches;
    total.mem_pressure += mem_pressure;
    total.mem_releases += mem_releases;
}

fn add_checker(total: &mut CheckerSummary, s: &CheckerSummary) {
    let CheckerSummary {
        loads_checked,
        stores_tracked,
        audits,
        violations,
    } = *s;
    total.loads_checked += loads_checked;
    total.stores_tracked += stores_tracked;
    total.audits += audits;
    let ViolationCounters {
        stale_translation,
        tft_claims_base_page,
        data_divergence,
        use_after_free,
        swept_line_resident,
        partition_unreachable,
        stale_physical_mapping,
        way_prediction_alias,
    } = violations;
    total.violations.stale_translation += stale_translation;
    total.violations.tft_claims_base_page += tft_claims_base_page;
    total.violations.data_divergence += data_divergence;
    total.violations.use_after_free += use_after_free;
    total.violations.swept_line_resident += swept_line_resident;
    total.violations.partition_unreachable += partition_unreachable;
    total.violations.stale_physical_mapping += stale_physical_mapping;
    total.violations.way_prediction_alias += way_prediction_alias;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L1DesignKind;

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig::quick("astar").design(L1DesignKind::Seesaw);
        let a = System::build(&cfg).unwrap().run().unwrap();
        let b = System::build(&cfg).unwrap().run().unwrap();
        assert_eq!(a.totals.cycles, b.totals.cycles);
        assert_eq!(a.l1.misses, b.l1.misses);
        assert_eq!(a.energy.total_nj(), b.energy.total_nj());
    }

    #[test]
    fn seesaw_beats_baseline_on_runtime_and_energy() {
        let base = System::build(&RunConfig::quick("redis")).unwrap().run().unwrap();
        let seesaw =
            System::build(&RunConfig::quick("redis").design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        assert!(
            seesaw.totals.cycles < base.totals.cycles,
            "SEESAW {} vs baseline {} cycles",
            seesaw.totals.cycles,
            base.totals.cycles
        );
        assert!(seesaw.energy.total_nj() < base.energy.total_nj());
        assert!(seesaw.runtime_improvement_pct(&base) > 0.0);
    }

    #[test]
    fn superpage_refs_dominate_unfragmented_runs() {
        let r = System::build(&RunConfig::quick("mongo").design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        assert!(
            r.superpage_ref_fraction > 0.7,
            "got {}",
            r.superpage_ref_fraction
        );
        assert!(r.superpage_coverage > 0.8);
    }

    #[test]
    fn fragmentation_reduces_coverage_and_benefit() {
        let frag = |pct| {
            System::build(
                &RunConfig::quick("olio")
                    .design(L1DesignKind::Seesaw)
                    .memhog(pct),
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let light = frag(0);
        let heavy = frag(85);
        assert!(
            heavy.superpage_coverage < light.superpage_coverage,
            "heavy {} vs light {}",
            heavy.superpage_coverage,
            light.superpage_coverage
        );
    }

    #[test]
    fn seesaw_never_regresses_without_superpages() {
        // With crushing fragmentation, SEESAW degenerates to the baseline
        // (slow path everywhere) but must not be slower than it.
        let cfg = RunConfig::quick("mcf").memhog(90);
        let base = System::build(&cfg).unwrap().run().unwrap();
        let seesaw = System::build(&cfg.design(L1DesignKind::Seesaw)).unwrap().run().unwrap();
        let delta = seesaw.runtime_improvement_pct(&base);
        assert!(delta > -1.0, "SEESAW regressed by {delta:.2}%");
    }

    #[test]
    fn inorder_gains_exceed_ooo_gains() {
        let gain = |cpu: CpuKind| {
            let base = System::build(&RunConfig::quick("tunk").cpu(cpu)).unwrap().run().unwrap();
            let seesaw =
                System::build(&RunConfig::quick("tunk").cpu(cpu).design(L1DesignKind::Seesaw))
                    .unwrap()
                    .run()
                    .unwrap();
            seesaw.runtime_improvement_pct(&base)
        };
        let ino = gain(CpuKind::InOrder);
        let ooo = gain(CpuKind::OutOfOrder);
        assert!(
            ino > ooo,
            "in-order gain {ino:.2}% must exceed out-of-order {ooo:.2}%"
        );
    }

    #[test]
    fn page_table_churn_stays_correct() {
        let mut cfg = RunConfig::quick("astar").design(L1DesignKind::Seesaw);
        cfg.page_op_interval = Some(20_000);
        let r = System::build(&cfg).unwrap().run().unwrap();
        // The run completes with sweeps recorded and sane stats.
        assert!(r.totals.instructions >= 150_000);
        assert!(r.seesaw.sweeps > 0 || r.tft.invalidations > 0);
    }

    #[test]
    fn pipt_design_runs() {
        let cfg = RunConfig::quick("xalanc").design(L1DesignKind::Pipt { ways: 4 });
        let r = System::build(&cfg).unwrap().run().unwrap();
        assert!(r.totals.cycles > 0);
        assert!(r.l1.accesses() > 0);
    }

    #[test]
    fn two_core_directory_runs_deliver_only_real_probes() {
        let cfg = RunConfig::quick("redis").design(L1DesignKind::Seesaw).cores(2);
        let r = System::build(&cfg).unwrap().run().unwrap();
        assert_eq!(r.cores.len(), 2);
        let coh = r.coherence.expect("directory attached for cores=2");
        assert!(coh.probes_delivered > 0, "real sharing must generate probes");
        // Every probe the cores received came out of the directory.
        assert!(
            r.coherence_probes <= coh.probes_delivered,
            "counted {} probes but the directory only delivered {}",
            r.coherence_probes,
            coh.probes_delivered
        );
        assert!(r.cores.iter().all(|c| c.totals.instructions >= 150_000));
    }

    #[test]
    fn single_core_runs_have_no_directory() {
        let r = System::build(&RunConfig::quick("astar")).unwrap().run().unwrap();
        assert!(r.coherence.is_none());
        assert_eq!(r.cores.len(), 1);
    }
}
