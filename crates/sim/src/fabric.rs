//! The distributed sweep fabric: a multi-process work-stealing job
//! queue layered on the persistent store (`SEESAW_STORE`).
//!
//! One process submits a sweep; any number of `seesaw-worker` processes
//! — on this machine or on any machine sharing the store directory —
//! claim its cells, run them under the full PR 6 supervision stack
//! (panic isolation, watchdog, seeded retries), and commit the results
//! into the store. The submitter tails aggregate progress and finally
//! assembles a merged [`SweepReport`] that is
//! bit-identical to a single-process run, because every cell flows back
//! through the same store round-trip the chaos tests already pin.
//!
//! Everything lives in `<store>/fabric/` as checksummed records in the
//! store's own wire format (DESIGN.md §16 is the normative spec):
//!
//! * **Jobs** (`j-<digest>.rec`) — one queued cell: its label, its
//!   configuration fingerprint, and the full `cfg.*` key/value encoding
//!   a worker rebuilds the [`RunConfig`] from. The digest is the same
//!   128-bit content digest the store files the result under, so "is
//!   this job done?" is a file-existence check.
//! * **Claims** (`c-<digest>.g<N>.rec`) — generation `N`'s exclusive
//!   lease on a job. A claim is taken with `O_EXCL` (`create_new`), so
//!   at most one worker ever owns a generation: duplicate claims are
//!   impossible by construction. The owner's heartbeat atomically
//!   rewrites the record to extend `expires_ms`; when a lease expires
//!   (the worker was SIGKILLed, lost power, or its machine vanished)
//!   any other worker *steals* the job by claiming generation `N+1`.
//! * **Error markers** (`x-<digest>.rec`) — terminal non-checker
//!   failures (the store only persists checker violations), written so
//!   a poisoned cell stops bouncing between workers. Jobs whose claim
//!   generation exceeds [`MAX_GENERATIONS`] are marked too.
//! * **Manifests** (`s-<sweep>.rec`) — the submitted sweep's name and
//!   cell roster, for operators inspecting a queue.
//!
//! A stolen job may end up executed twice when a presumed-dead worker
//! was merely slow: that is safe, not an error. Cells are deterministic
//! and store commits are atomic whole-file renames of byte-identical
//! records, so the second writer changes nothing.
//!
//! # Example
//!
//! Submit one tiny cell, drain it with an in-process worker, and read
//! the merged report back (real deployments run `seesaw-worker`
//! processes instead — the loop is the same [`run_worker`]):
//!
//! ```
//! use std::sync::Arc;
//! use seesaw_sim::fabric::{run_worker, Fabric, WorkerOptions};
//! use seesaw_sim::{RunConfig, Store, SweepPolicy};
//!
//! let dir = std::env::temp_dir().join(format!("fabric-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = Arc::new(Store::open(&dir).unwrap());
//! let fabric = Fabric::open(store.clone()).unwrap();
//!
//! let cells = vec![("demo".to_string(), RunConfig::quick("gups").instructions(20_000))];
//! let submission = fabric.submit("doc-sweep", cells).unwrap();
//!
//! let opts = WorkerOptions::from_env().id("doc-worker");
//! let stats = run_worker(store, &opts, SweepPolicy::from_env()).unwrap();
//! assert_eq!(stats.claims, 1);
//! assert_eq!(stats.completed, 1);
//!
//! let report = submission.assemble(&fabric, SweepPolicy::from_env());
//! assert!(report.all_ok());
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use seesaw_trace::{CellState, FabricWorkerStats};

use crate::repro::{config_from_kv, config_kv};
use crate::runner::{fingerprint, Plan};
use crate::status::StatusBoard;
use crate::store::{
    commit_record, digest, fnv1a64, read_record_at, record_bytes, Dec, Enc, Store,
};
use crate::{RunConfig, SimError, SweepPolicy, SweepReport};

/// Claim generations a job may burn through before it is marked
/// poisoned: each generation is one worker's ownership, so reaching the
/// cap means the job crashed (or wedged past its lease) this many
/// owners in a row.
pub const MAX_GENERATIONS: u64 = 6;

/// Milliseconds since the Unix epoch — the clock leases are written in.
/// Workers sharing a store over a network filesystem should have
/// roughly synchronized clocks; skew eats into (or pads) the lease, it
/// never breaks exclusivity.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a submission or claim failed.
#[derive(Debug)]
pub enum FabricError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// A cell's configuration cannot ride the fabric: its `cfg.*`
    /// encoding does not round-trip to the same fingerprint (explicit
    /// fault injection) or its result would never persist (captured
    /// event traces). Run these cells in-process instead.
    Unsupported {
        /// Label of the offending cell.
        label: String,
        /// What about it the fabric cannot express.
        detail: String,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Io(e) => write!(f, "fabric I/O error: {e}"),
            FabricError::Unsupported { label, detail } => {
                write!(f, "cell {label:?} cannot be distributed: {detail}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> Self {
        FabricError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------------

/// One queued cell, decoded from its `j-<digest>.rec` job record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The 128-bit content digest (file-name stem, store record key).
    pub digest: String,
    /// The configuration fingerprint the digest was derived from.
    pub fingerprint: String,
    /// The label the submitter pushed the cell with.
    pub label: String,
    /// The rebuilt configuration, fingerprint-verified.
    pub config: RunConfig,
}

fn encode_job(label: &str, config: &RunConfig) -> (String, String, String) {
    let fp = fingerprint(config);
    let d = digest(&fp);
    let mut e = Enc::new(&fp);
    e.s("label", label);
    for (k, v) in config_kv(config) {
        e.s(&format!("cfg.{k}"), &v);
    }
    (d, fp, e.out)
}

fn decode_job(digest_hint: &str, payload: &str) -> Result<JobRecord, String> {
    let d = Dec::new(payload);
    let fp = d.s("fingerprint")?;
    let label = d.s("label")?;
    let kv = d.with_prefix("cfg.");
    let config = config_from_kv(&kv).map_err(|e| e.to_string())?;
    if fingerprint(&config) != fp {
        return Err(format!(
            "job {digest_hint}: rebuilt config does not reproduce the recorded fingerprint"
        ));
    }
    Ok(JobRecord {
        digest: digest_hint.to_string(),
        fingerprint: fp,
        label,
        config,
    })
}

/// One generation's lease on a job, decoded from `c-<digest>.g<N>.rec`.
#[derive(Debug, Clone)]
pub struct ClaimRecord {
    /// The owning worker's id.
    pub worker: String,
    /// The owning worker's pid (diagnostic only — pids recycle).
    pub pid: u64,
    /// Claim generation (1 = first owner, each steal increments).
    pub generation: u64,
    /// Epoch-ms when the claim was taken.
    pub born_ms: u64,
    /// Epoch-ms after which the lease is stealable.
    pub expires_ms: u64,
}

impl ClaimRecord {
    /// True when the lease is still live at `now` (epoch ms).
    pub fn live_at(&self, now: u64) -> bool {
        now < self.expires_ms
    }
}

fn encode_claim(c: &ClaimRecord) -> String {
    let mut e = Enc::raw();
    e.s("worker", &c.worker);
    e.u("pid", c.pid);
    e.u("generation", c.generation);
    e.u("born_ms", c.born_ms);
    e.u("expires_ms", c.expires_ms);
    e.out
}

fn decode_claim(payload: &str) -> Result<ClaimRecord, String> {
    let d = Dec::new(payload);
    Ok(ClaimRecord {
        worker: d.s("worker")?,
        pid: d.u("pid")?,
        generation: d.u("generation")?,
        born_ms: d.u("born_ms")?,
        expires_ms: d.u("expires_ms")?,
    })
}

// ---------------------------------------------------------------------------
// The fabric handle.
// ---------------------------------------------------------------------------

/// Aggregate state of one fabric queue at a glance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Job records in the queue.
    pub jobs: usize,
    /// Jobs with a terminal outcome: a stored result, a persisted
    /// checker failure, or an error marker.
    pub resolved: usize,
    /// Unresolved jobs currently under a live lease.
    pub claimed: usize,
    /// Jobs resolved by an error marker.
    pub errored: usize,
}

impl QueueSnapshot {
    /// Jobs still needing a worker (unclaimed or under an expired
    /// lease).
    pub fn unresolved(&self) -> usize {
        self.jobs - self.resolved
    }
}

/// A handle on the job queue under one store's `fabric/` directory.
#[derive(Debug)]
pub struct Fabric {
    store: Arc<Store>,
    dir: PathBuf,
}

impl Fabric {
    /// Opens (creating if needed) the fabric directory of `store`.
    ///
    /// # Errors
    /// Returns the I/O error when the directory cannot be created.
    pub fn open(store: Arc<Store>) -> std::io::Result<Fabric> {
        let dir = store.dir().join("fabric");
        fs::create_dir_all(&dir)?;
        Ok(Fabric { store, dir })
    }

    /// The fabric directory (`<store>/fabric`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store the fabric feeds.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Enqueues one cell, returning its digest. Idempotent: a job record
    /// that already exists is left untouched (same config → same bytes).
    ///
    /// # Errors
    /// [`FabricError::Unsupported`] when the configuration cannot ride
    /// the fabric (see [`FabricError`]); I/O errors from the commit.
    pub fn enqueue(&self, label: &str, config: &RunConfig) -> Result<String, FabricError> {
        if config.trace {
            return Err(FabricError::Unsupported {
                label: label.to_string(),
                detail: "traced results are never persisted, so the job could not resolve"
                    .to_string(),
            });
        }
        let (d, fp, payload) = encode_job(label, config);
        if let Err(e) = decode_job(&d, &payload) {
            return Err(FabricError::Unsupported {
                label: label.to_string(),
                detail: e,
            });
        }
        debug_assert_eq!(fp, fingerprint(config));
        let name = format!("j-{d}.rec");
        if !self.dir.join(&name).exists() {
            commit_record(&self.dir, &name, "job", &payload)?;
        }
        Ok(d)
    }

    /// Submits a whole sweep: every cell enqueued plus a manifest
    /// record, returning the [`Submission`] to wait on.
    ///
    /// # Errors
    /// The first unsupported cell or I/O error; nothing is rolled back
    /// (job records are idempotent and harmless on their own).
    pub fn submit(
        &self,
        sweep: &str,
        cells: Vec<(String, RunConfig)>,
    ) -> Result<Submission, FabricError> {
        let mut digests = Vec::with_capacity(cells.len());
        for (label, config) in &cells {
            digests.push(self.enqueue(label, config)?);
        }
        let mut e = Enc::raw();
        e.s("sweep", sweep);
        e.u("cells.len", cells.len() as u64);
        for (i, ((label, _), d)) in cells.iter().zip(&digests).enumerate() {
            e.s(&format!("cells.{i}.label"), label);
            e.s(&format!("cells.{i}.digest"), d);
        }
        let slug: String = sweep
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        commit_record(&self.dir, &format!("s-{slug}.rec"), "manifest", &e.out)?;
        Ok(Submission {
            sweep: sweep.to_string(),
            cells,
            digests,
        })
    }

    /// Every queued job's digest, sorted.
    pub fn job_digests(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<String> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.strip_prefix("j-")?
                    .strip_suffix(".rec")
                    .map(str::to_string)
            })
            .collect();
        out.sort();
        out
    }

    /// Reads and decodes one job record. `None` when absent or
    /// undecodable (the error string is in the `Err` arm of the inner
    /// result consumers see via [`Fabric::claim_next`]).
    pub fn job(&self, digest: &str) -> Option<JobRecord> {
        let (kind, payload) = read_record_at(&self.dir.join(format!("j-{digest}.rec")))?;
        if kind != "job" {
            return None;
        }
        decode_job(digest, &payload).ok()
    }

    /// True when the job has a terminal outcome: a stored result, a
    /// persisted checker failure, or an error marker.
    pub fn resolved(&self, digest: &str) -> bool {
        self.store.dir().join(format!("r-{digest}.rec")).exists()
            || self.store.dir().join(format!("f-{digest}.rec")).exists()
            || self.dir.join(format!("x-{digest}.rec")).exists()
    }

    /// True when the job resolved through an error marker.
    pub fn errored(&self, digest: &str) -> bool {
        self.dir.join(format!("x-{digest}.rec")).exists()
    }

    fn claim_path(&self, digest: &str, generation: u64) -> PathBuf {
        self.dir.join(format!("c-{digest}.g{generation}.rec"))
    }

    /// The job's highest claim generation (0 when never claimed) and
    /// that generation's decoded record, if readable.
    pub fn latest_claim(&self, digest: &str) -> (u64, Option<ClaimRecord>) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (0, None);
        };
        let prefix = format!("c-{digest}.g");
        let max_gen = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.strip_prefix(prefix.as_str())?
                    .strip_suffix(".rec")?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .unwrap_or(0);
        if max_gen == 0 {
            return (0, None);
        }
        let record = read_record_at(&self.claim_path(digest, max_gen))
            .filter(|(kind, _)| kind == "claim")
            .and_then(|(_, payload)| decode_claim(&payload).ok());
        (max_gen, record)
    }

    /// Whether the job's newest lease is live. An unreadable claim file
    /// (a concurrent `create_new` writer mid-record, or crash debris) is
    /// treated as live until its mtime is a full `lease` old — the
    /// exclusivity of the *file's existence* is what matters, and the
    /// grace period lets an interrupted writer either finish or age out.
    fn claim_live(&self, digest: &str, generation: u64, record: Option<&ClaimRecord>, lease: Duration) -> bool {
        match record {
            Some(c) => c.live_at(now_ms()),
            None => fs::metadata(self.claim_path(digest, generation))
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age < lease),
        }
    }

    /// Atomically takes generation `generation` of `digest` for
    /// `worker`: wins iff this call created the claim file (`O_EXCL`).
    fn try_claim(
        &self,
        digest: &str,
        generation: u64,
        worker: &str,
        lease: Duration,
    ) -> std::io::Result<bool> {
        let path = self.claim_path(digest, generation);
        let mut f = match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(false),
            Err(e) => return Err(e),
        };
        let now = now_ms();
        let claim = ClaimRecord {
            worker: worker.to_string(),
            pid: u64::from(std::process::id()),
            generation,
            born_ms: now,
            expires_ms: now + lease.as_millis() as u64,
        };
        f.write_all(record_bytes("claim", &encode_claim(&claim)).as_bytes())?;
        f.sync_all()?;
        Ok(true)
    }

    /// Extends a held lease by atomically rewriting its claim record.
    /// Returns `false` — without writing — when a higher generation
    /// already exists: the lease expired and another worker stole the
    /// job (the current run should finish anyway; duplicate execution
    /// is safe).
    pub fn renew(&self, claim: &ClaimedJob) -> bool {
        let (max_gen, _) = self.latest_claim(&claim.job.digest);
        if max_gen > claim.generation {
            return false;
        }
        let now = now_ms();
        let record = ClaimRecord {
            worker: claim.worker.clone(),
            pid: u64::from(std::process::id()),
            generation: claim.generation,
            born_ms: claim.born_ms,
            expires_ms: now + claim.lease.as_millis() as u64,
        };
        commit_record(
            &self.dir,
            &format!("c-{}.g{}.rec", claim.job.digest, claim.generation),
            "claim",
            &encode_claim(&record),
        )
        .is_ok()
    }

    /// Writes the terminal error marker that resolves a job outside the
    /// store (non-checker failure, undecodable job record, or
    /// generation cap).
    pub fn mark_error(&self, digest: &str, worker: &str, detail: &str) {
        let mut e = Enc::raw();
        e.s("digest", digest);
        e.s("worker", worker);
        e.s("detail", detail);
        e.u("at_ms", now_ms());
        let _ = commit_record(&self.dir, &format!("x-{digest}.rec"), "error", &e.out);
    }

    /// Reads an error marker's detail line, if present.
    pub fn error_detail(&self, digest: &str) -> Option<String> {
        let (kind, payload) = read_record_at(&self.dir.join(format!("x-{digest}.rec")))?;
        if kind != "error" {
            return None;
        }
        Dec::new(&payload).s("detail").ok()
    }

    /// Claims the next runnable job for `worker`, stealing expired
    /// leases. `None` when every job is resolved or under a live lease.
    ///
    /// The scan starts at a worker-specific rotation of the sorted
    /// digest list so concurrent workers mostly try different jobs
    /// first; when they do collide, `create_new` picks exactly one
    /// winner and the loser moves on (counted in
    /// [`FabricWorkerStats::races_lost`]).
    ///
    /// # Errors
    /// Only unexpected I/O errors; contention and corruption are not
    /// errors.
    pub fn claim_next(
        &self,
        worker: &str,
        lease: Duration,
        stats: &mut FabricWorkerStats,
    ) -> std::io::Result<Option<ClaimedJob>> {
        let digests = self.job_digests();
        if digests.is_empty() {
            return Ok(None);
        }
        let start = (fnv1a64(worker.as_bytes()) as usize) % digests.len();
        for i in 0..digests.len() {
            let d = &digests[(start + i) % digests.len()];
            if self.resolved(d) {
                continue;
            }
            let (gen, record) = self.latest_claim(d);
            if gen > 0 && self.claim_live(d, gen, record.as_ref(), lease) {
                continue;
            }
            let next_gen = gen + 1;
            if next_gen > MAX_GENERATIONS {
                self.mark_error(
                    d,
                    worker,
                    &format!("claim generation cap ({MAX_GENERATIONS}) exceeded: the job keeps killing its workers"),
                );
                stats.error_markers += 1;
                continue;
            }
            if !self.try_claim(d, next_gen, worker, lease)? {
                stats.races_lost += 1;
                continue;
            }
            stats.claims += 1;
            if gen > 0 {
                stats.steals += 1;
            }
            let Some(job) = self.job(d) else {
                // The claim is ours, but the job record is corrupt or
                // its config no longer decodes (version skew): resolve
                // it so the queue drains rather than ping-pongs.
                self.mark_error(d, worker, "job record unreadable or undecodable");
                stats.error_markers += 1;
                continue;
            };
            return Ok(Some(ClaimedJob {
                job,
                worker: worker.to_string(),
                generation: next_gen,
                born_ms: now_ms(),
                lease,
            }));
        }
        Ok(None)
    }

    /// One pass over the queue, counting states.
    pub fn snapshot(&self, lease: Duration) -> QueueSnapshot {
        let mut snap = QueueSnapshot::default();
        for d in self.job_digests() {
            snap.jobs += 1;
            if self.resolved(&d) {
                snap.resolved += 1;
                if self.errored(&d) {
                    snap.errored += 1;
                }
                continue;
            }
            let (gen, record) = self.latest_claim(&d);
            if gen > 0 && self.claim_live(&d, gen, record.as_ref(), lease) {
                snap.claimed += 1;
            }
        }
        snap
    }
}

/// A lease this process holds on one job.
#[derive(Debug, Clone)]
pub struct ClaimedJob {
    /// The decoded job.
    pub job: JobRecord,
    /// The claiming worker's id.
    pub worker: String,
    /// The generation this claim owns.
    pub generation: u64,
    /// When the claim was taken (epoch ms).
    pub born_ms: u64,
    /// The lease duration renewals extend by.
    pub lease: Duration,
}

// ---------------------------------------------------------------------------
// The worker loop.
// ---------------------------------------------------------------------------

/// Knobs of one worker process (see also the environment defaults in
/// [`WorkerOptions::from_env`]).
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker id written into claim records (`SEESAW_WORKER_ID`,
    /// default `w<pid>`). Make it unique per process across the fleet.
    pub id: String,
    /// Lease duration (`SEESAW_FABRIC_LEASE_MS`, default 30 000 ms).
    /// The heartbeat renews at a third of this, so a worker survives
    /// pauses up to ~2/3 of the lease; a SIGKILLed worker's jobs become
    /// stealable one lease after its last renewal.
    pub lease: Duration,
    /// Idle poll interval (`SEESAW_FABRIC_POLL_MS`, default 200 ms).
    pub poll: Duration,
    /// Stop after this many executed jobs (`None` = unbounded).
    pub max_jobs: Option<u64>,
    /// Keep polling for new work after the queue drains instead of
    /// exiting (fleet mode; the default `false` exits once every job is
    /// resolved).
    pub linger: bool,
}

impl WorkerOptions {
    /// Defaults, overridden by `SEESAW_WORKER_ID`,
    /// `SEESAW_FABRIC_LEASE_MS`, and `SEESAW_FABRIC_POLL_MS`.
    pub fn from_env() -> WorkerOptions {
        WorkerOptions {
            id: std::env::var("SEESAW_WORKER_ID")
                .ok()
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| format!("w{}", std::process::id())),
            lease: Duration::from_millis(env_u64("SEESAW_FABRIC_LEASE_MS").unwrap_or(30_000).max(50)),
            poll: Duration::from_millis(env_u64("SEESAW_FABRIC_POLL_MS").unwrap_or(200).max(10)),
            max_jobs: None,
            linger: false,
        }
    }

    /// Builder: set the worker id.
    pub fn id(mut self, id: impl Into<String>) -> Self {
        self.id = id.into();
        self
    }

    /// Builder: set the lease duration.
    pub fn lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self
    }

    /// Builder: set the idle poll interval.
    pub fn poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Builder: stop after `n` executed jobs.
    pub fn max_jobs(mut self, n: u64) -> Self {
        self.max_jobs = Some(n);
        self
    }

    /// Builder: keep polling after the queue drains.
    pub fn linger(mut self, linger: bool) -> Self {
        self.linger = linger;
        self
    }
}

/// The process-wide fabric tally [`run_worker`] accumulates into — the
/// `[fabric]` line of [`crate::OpsSummary`] and the worker binary's
/// Prometheus textfile read it.
pub fn session_fabric() -> FabricWorkerStats {
    *session_fabric_cell().lock().expect("fabric stats lock")
}

fn session_fabric_cell() -> &'static Mutex<FabricWorkerStats> {
    static CELL: OnceLock<Mutex<FabricWorkerStats>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(FabricWorkerStats::default()))
}

fn merge_session(delta: &FabricWorkerStats) {
    let mut s = session_fabric_cell().lock().expect("fabric stats lock");
    s.claims += delta.claims;
    s.steals += delta.steals;
    s.races_lost += delta.races_lost;
    s.renewals += delta.renewals;
    s.renewals_lost += delta.renewals_lost;
    s.completed += delta.completed;
    s.check_failures += delta.check_failures;
    s.error_markers += delta.error_markers;
    s.idle_polls += delta.idle_polls;
    s.busy_ms += delta.busy_ms;
}

/// Runs one claimed job to resolution: a single-cell
/// [`Plan::run_sweep`] with the shared store attached, so the full
/// supervision stack (catch_unwind isolation, watchdog, seeded
/// backoff retries) and the store write-back are exactly the
/// single-process code path. A heartbeat thread renews the lease at a
/// third of its duration until the cell resolves.
pub fn run_claimed(
    fabric: &Fabric,
    claimed: &ClaimedJob,
    policy: SweepPolicy,
    stats: &mut FabricWorkerStats,
) {
    let t0 = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let renewals = Arc::new(AtomicU64::new(0));
    let renewals_lost = Arc::new(AtomicU64::new(0));
    let heartbeat = {
        let stop = stop.clone();
        let renewals = renewals.clone();
        let renewals_lost = renewals_lost.clone();
        let fabric_dir = fabric.dir().to_path_buf();
        let store = fabric.store().clone();
        let claimed = claimed.clone();
        std::thread::Builder::new()
            .name(format!("seesaw-lease-{}", &claimed.job.digest[..8]))
            .spawn(move || {
                // Re-open cheap handles: the heartbeat must not borrow
                // from the worker loop's lifetime.
                let fabric = Fabric {
                    store,
                    dir: fabric_dir,
                };
                let interval = claimed.lease / 3;
                loop {
                    let mut waited = Duration::ZERO;
                    while waited < interval {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = interval.saturating_sub(waited).min(Duration::from_millis(25));
                        std::thread::sleep(step);
                        waited += step;
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if fabric.renew(&claimed) {
                        renewals.fetch_add(1, Ordering::Relaxed);
                    } else {
                        renewals_lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .expect("spawn lease heartbeat")
    };

    let mut plan = Plan::with_threads(1)
        .with_store(fabric.store().clone())
        .without_status()
        .named(format!("fabric-{}", claimed.worker));
    plan.push(claimed.job.label.clone(), claimed.job.config.clone());
    let report = plan.run_sweep(policy);

    stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();
    stats.renewals += renewals.load(Ordering::Relaxed);
    stats.renewals_lost += renewals_lost.load(Ordering::Relaxed);
    stats.busy_ms += t0.elapsed().as_millis() as u64;

    if report.all_ok() {
        stats.completed += 1;
        return;
    }
    match report.failed.first().map(|f| &f.error) {
        Some(SimError::Check(_)) => {
            // The store persisted the failure marker: resolved.
            stats.check_failures += 1;
        }
        Some(err) => {
            fabric.mark_error(&claimed.job.digest, &claimed.worker, &err.to_string());
            stats.error_markers += 1;
        }
        None => {
            // all_ok() false with no failed cell cannot happen, but a
            // wedged queue is worse than a spurious marker.
            fabric.mark_error(&claimed.job.digest, &claimed.worker, "unknown failure");
            stats.error_markers += 1;
        }
    }
}

/// The worker main loop: claim → supervised run → store write-back →
/// repeat, stealing expired leases along the way. Exits when the queue
/// is fully resolved (unless [`WorkerOptions::linger`]) or
/// [`WorkerOptions::max_jobs`] is reached. Returns this worker's tally
/// (also merged into [`session_fabric`]).
///
/// # Errors
/// Only unexpected I/O errors on the fabric directory; job failures
/// resolve through the store or error markers instead.
pub fn run_worker(
    store: Arc<Store>,
    opts: &WorkerOptions,
    policy: SweepPolicy,
) -> std::io::Result<FabricWorkerStats> {
    let fabric = Fabric::open(store)?;
    let mut stats = FabricWorkerStats::default();
    let mut executed = 0u64;
    loop {
        if opts.max_jobs.is_some_and(|max| executed >= max) {
            break;
        }
        match fabric.claim_next(&opts.id, opts.lease, &mut stats)? {
            Some(claimed) => {
                run_claimed(&fabric, &claimed, policy, &mut stats);
                executed += 1;
            }
            None => {
                if !opts.linger && fabric.snapshot(opts.lease).unresolved() == 0 {
                    break;
                }
                stats.idle_polls += 1;
                std::thread::sleep(opts.poll);
            }
        }
    }
    merge_session(&stats);
    Ok(stats)
}

// ---------------------------------------------------------------------------
// The submit side.
// ---------------------------------------------------------------------------

/// What [`Submission::wait`] observed by the time it returned.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaitOutcome {
    /// Cells with a terminal outcome.
    pub resolved: usize,
    /// Cells resolved through an error marker.
    pub errored: usize,
    /// True when every cell resolved (false: the caller's
    /// `keep_waiting` gave up first).
    pub complete: bool,
}

/// A submitted sweep: the cells, their digests, and the ways to wait on
/// and merge the distributed outcome.
#[derive(Debug)]
pub struct Submission {
    sweep: String,
    cells: Vec<(String, RunConfig)>,
    digests: Vec<String>,
}

impl Submission {
    /// The sweep's name.
    pub fn sweep(&self) -> &str {
        &self.sweep
    }

    /// The submitted cells, in plan order.
    pub fn cells(&self) -> &[(String, RunConfig)] {
        &self.cells
    }

    /// The cells' digests, in plan order.
    pub fn digests(&self) -> &[String] {
        &self.digests
    }

    /// Polls the queue until every cell resolves, mirroring progress
    /// onto `board` (claims become `Running`, generation bumps become
    /// `Retrying`, resolutions become `Done`/`Failed`) so
    /// `seesaw-status` renders a live aggregate view of the whole
    /// fleet. `keep_waiting` is consulted between polls; returning
    /// `false` stops early (the caller can then fall back to local
    /// execution via [`Submission::assemble`], which self-heals
    /// stragglers).
    pub fn wait(
        &self,
        fabric: &Fabric,
        poll: Duration,
        board: Option<&StatusBoard>,
        mut keep_waiting: impl FnMut() -> bool,
    ) -> WaitOutcome {
        #[derive(Clone, Copy, PartialEq)]
        enum Tracked {
            Queued,
            Running(u64),
            Terminal,
        }
        let mut tracked = vec![Tracked::Queued; self.digests.len()];
        // A generous default lease for liveness classification when the
        // submitter doesn't know the workers' setting; only affects the
        // displayed Running/Queued split, never correctness.
        let lease = WorkerOptions::from_env().lease;
        loop {
            let mut outcome = WaitOutcome::default();
            for (i, d) in self.digests.iter().enumerate() {
                if fabric.resolved(d) {
                    outcome.resolved += 1;
                    let failed =
                        fabric.errored(d) || fabric.store().dir().join(format!("f-{d}.rec")).exists();
                    if failed {
                        outcome.errored += 1;
                    }
                    if tracked[i] != Tracked::Terminal {
                        if let Some(b) = board {
                            b.finish(
                                &[i],
                                if failed { CellState::Failed } else { CellState::Done },
                            );
                        }
                        tracked[i] = Tracked::Terminal;
                    }
                    continue;
                }
                let (gen, record) = fabric.latest_claim(d);
                let live = gen > 0 && fabric.claim_live(d, gen, record.as_ref(), lease);
                match tracked[i] {
                    Tracked::Queued if live => {
                        if let Some(b) = board {
                            b.start_attempt(&[i], gen as u32);
                        }
                        tracked[i] = Tracked::Running(gen);
                    }
                    Tracked::Running(seen) if live && gen > seen => {
                        if let Some(b) = board {
                            b.retrying(&[i], gen as u32);
                            b.start_attempt(&[i], gen as u32);
                        }
                        tracked[i] = Tracked::Running(gen);
                    }
                    _ => {}
                }
            }
            if outcome.resolved == self.digests.len() {
                outcome.complete = true;
                if let Some(b) = board {
                    b.mark_done();
                }
                return outcome;
            }
            if !keep_waiting() {
                return outcome;
            }
            std::thread::sleep(poll);
        }
    }

    /// Re-runs the plan through the standard [`Plan::run_sweep`] path
    /// with the shared store attached: every worker-resolved cell is a
    /// store hit (bit-identical by the store round-trip the chaos tests
    /// pin), and any straggler — an unresolved or error-marked cell —
    /// is simulated locally, so the merged report is always complete.
    pub fn assemble(&self, fabric: &Fabric, policy: SweepPolicy) -> SweepReport {
        let mut plan = Plan::new()
            .with_store(fabric.store().clone())
            .named(self.sweep.clone());
        for (label, config) in &self.cells {
            plan.push(label.clone(), config.clone());
        }
        plan.run_sweep(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_fabric(tag: &str) -> Fabric {
        let dir = std::env::temp_dir().join(format!(
            "seesaw-fabric-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).expect("open test store"));
        Fabric::open(store).expect("open test fabric")
    }

    fn teardown(fabric: &Fabric) {
        let _ = fs::remove_dir_all(fabric.store().dir());
    }

    fn cell() -> RunConfig {
        RunConfig::quick("gups").instructions(20_000)
    }

    #[test]
    fn job_records_round_trip() {
        let fabric = tmp_fabric("roundtrip");
        let cfg = cell();
        let d = fabric.enqueue("a cell", &cfg).expect("enqueue");
        assert_eq!(d, digest(&fingerprint(&cfg)));
        // Idempotent: a second enqueue of the same cell is a no-op.
        assert_eq!(d, fabric.enqueue("a cell", &cfg).expect("re-enqueue"));
        let job = fabric.job(&d).expect("job decodes");
        assert_eq!(job.label, "a cell");
        assert_eq!(fingerprint(&job.config), fingerprint(&cfg));
        assert_eq!(fabric.job_digests(), vec![d]);
        teardown(&fabric);
    }

    #[test]
    fn unsupported_configs_are_rejected_up_front() {
        let fabric = tmp_fabric("unsupported");
        // Traced results never persist, so the job could never resolve.
        let traced = cell().with_trace();
        assert!(matches!(
            fabric.enqueue("traced", &traced),
            Err(FabricError::Unsupported { .. })
        ));
        // Explicit fault injection is dropped by the kv codec, so the
        // rebuilt config would not reproduce the fingerprint.
        let faulty = cell().with_faults(crate::FaultConfig::all(7));
        assert!(matches!(
            fabric.enqueue("faulty", &faulty),
            Err(FabricError::Unsupported { .. })
        ));
        assert!(fabric.job_digests().is_empty());
        teardown(&fabric);
    }

    #[test]
    fn claim_generation_has_exactly_one_winner() {
        let fabric = tmp_fabric("exclusive");
        let d = fabric.enqueue("c", &cell()).expect("enqueue");
        let fabric = Arc::new(fabric);
        let wins: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let fabric = fabric.clone();
                    let d = d.clone();
                    s.spawn(move || {
                        fabric
                            .try_claim(&d, 1, &format!("w{i}"), Duration::from_secs(60))
                            .expect("claim attempt")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
        let (gen, record) = fabric.latest_claim(&d);
        assert_eq!(gen, 1);
        let record = record.expect("winning claim decodes");
        assert!(record.live_at(now_ms()));
        teardown(&fabric);
    }

    #[test]
    fn expired_lease_is_stolen_at_the_next_generation() {
        let fabric = tmp_fabric("steal");
        let d = fabric.enqueue("c", &cell()).expect("enqueue");
        // A zero-length lease is born expired — the worker vanished.
        assert!(fabric
            .try_claim(&d, 1, "dead-worker", Duration::ZERO)
            .expect("claim"));
        let mut stats = FabricWorkerStats::default();
        let claimed = fabric
            .claim_next("thief", Duration::from_secs(60), &mut stats)
            .expect("scan")
            .expect("steals the expired lease");
        assert_eq!(claimed.generation, 2);
        assert_eq!(stats.claims, 1);
        assert_eq!(stats.steals, 1);
        // While the thief's lease is live, nobody else can claim.
        let mut other = FabricWorkerStats::default();
        assert!(fabric
            .claim_next("third", Duration::from_secs(60), &mut other)
            .expect("scan")
            .is_none());
        assert_eq!(other.claims, 0);
        teardown(&fabric);
    }

    #[test]
    fn renew_extends_until_stolen() {
        let fabric = tmp_fabric("renew");
        let d = fabric.enqueue("c", &cell()).expect("enqueue");
        let mut stats = FabricWorkerStats::default();
        let claimed = fabric
            .claim_next("owner", Duration::from_secs(60), &mut stats)
            .expect("scan")
            .expect("claims");
        assert!(fabric.renew(&claimed));
        let (_, record) = fabric.latest_claim(&d);
        let first_expiry = record.expect("claim decodes").expires_ms;
        assert!(fabric.renew(&claimed));
        let (_, record) = fabric.latest_claim(&d);
        assert!(record.expect("claim decodes").expires_ms >= first_expiry);
        // A steal at the next generation makes renewal report the loss.
        assert!(fabric
            .try_claim(&d, claimed.generation + 1, "thief", Duration::from_secs(60))
            .expect("steal"));
        assert!(!fabric.renew(&claimed));
        teardown(&fabric);
    }

    #[test]
    fn generation_cap_resolves_a_poison_job() {
        let fabric = tmp_fabric("poison");
        let d = fabric.enqueue("c", &cell()).expect("enqueue");
        for gen in 1..=MAX_GENERATIONS {
            assert!(fabric
                .try_claim(&d, gen, "crashy", Duration::ZERO)
                .expect("claim"));
        }
        let mut stats = FabricWorkerStats::default();
        assert!(fabric
            .claim_next("survivor", Duration::from_secs(60), &mut stats)
            .expect("scan")
            .is_none());
        assert_eq!(stats.error_markers, 1);
        assert!(fabric.resolved(&d));
        assert!(fabric.errored(&d));
        assert!(fabric
            .error_detail(&d)
            .expect("marker carries a detail line")
            .contains("generation cap"));
        let snap = fabric.snapshot(Duration::from_secs(60));
        assert_eq!(snap.jobs, 1);
        assert_eq!(snap.resolved, 1);
        assert_eq!(snap.errored, 1);
        assert_eq!(snap.unresolved(), 0);
        teardown(&fabric);
    }
}
