//! Violation repro bundles: record → shrink → replay.
//!
//! When a fault-injected run trips the differential checker, the
//! simulator attaches a [`ReproBundle`] to the [`SimError::Check`] it
//! returns (and autosaves it as JSON when `SEESAW_REPRO=<dir>` is set).
//! The bundle pins down everything a second process needs: the full
//! [`RunConfig`] as a key/value map (this module owns the codec in both
//! directions), the base injector configuration with its seed, the fault
//! points that actually fired per core, the violation summary, checker
//! counters, the traced event tail, and provenance (git SHA, config
//! fingerprint).
//!
//! Three entry points operate on bundles:
//!
//! * [`record`] — run a fault-injected configuration with the checker
//!   and tracer forced on and return the bundle of its first violation.
//! * [`replay`] — re-run a bundle's configuration verbatim and report
//!   whether the identical violation (kind and instruction) recurred.
//!   Replays bypass the runner's memo cache: a replay must re-simulate,
//!   not fetch its own previous answer.
//! * [`shrink`] — delta-debug a bundle down to a minimal explicit
//!   [`FaultSchedule`]: bisect the instruction budget to the first
//!   failing prefix, greedily disable whole fault kinds, then ddmin the
//!   surviving points. Candidate runs batch through [`Plan::run_each`],
//!   so they execute in parallel and recurring candidates are served
//!   from the failure memo.
//!
//! # Determinism and the warmup normalization
//!
//! Shrinking is sound because a run is a pure function of its
//! `RunConfig` and fault positions are *global* instruction counts
//! (warmup + measured), so truncating the budget leaves the surviving
//! prefix bit-identical. One normalization is applied and then
//! *verified, not assumed*: [`shrink`] rewrites the warmup split to zero
//! so the whole horizon is one phase. The context-switch / page-op /
//! sample schedules are phase-local (they reset at each phase boundary),
//! so this rewrite can shift those events when their intervals are
//! shorter than a phase; the shrinker therefore re-runs the normalized
//! configuration first and refuses to proceed (`ReproError::Mismatch`)
//! if the violation kind changed. Explicit-schedule replays restore the
//! injector's RNG snapshot before every surviving point, so deleting a
//! point never perturbs the target selection of the points that remain.

use seesaw_check::{
    BundleViolation, FaultConfig, FaultKind, FaultPoint, FaultSchedule, InjectionStats,
    ReproBundle, Violation, BUNDLE_VERSION,
};
use seesaw_core::InsertionPolicy;
use seesaw_trace::{Collect, MetricsRegistry};
use seesaw_workloads::catalog;

use crate::core::Core;
use crate::runner::{fingerprint, Plan};
use crate::{
    CpuKind, Frequency, L1DesignKind, ProbeSource, RunConfig, SchedulerHintPolicy, SimError,
    System,
};

/// How many trailing trace events a bundle captures.
pub const EVENT_TAIL_LINES: usize = 256;

/// Why a record / replay / shrink operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReproError {
    /// The bundle document was malformed (wraps [`seesaw_check::BundleError`]).
    Bundle(String),
    /// The bundle's configuration could not be decoded into a [`RunConfig`].
    Config(String),
    /// The run completed without any checker violation.
    NoViolation,
    /// A violation occurred, but not the one the bundle describes.
    Mismatch {
        /// The violation kind the bundle expects.
        expected: String,
        /// The violation kind the run produced.
        got: String,
    },
    /// The simulation failed for a non-checker reason.
    Sim(String),
}

impl std::fmt::Display for ReproError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReproError::Bundle(m) => write!(f, "malformed bundle: {m}"),
            ReproError::Config(m) => write!(f, "bundle config: {m}"),
            ReproError::NoViolation => write!(f, "the run completed without a checker violation"),
            ReproError::Mismatch { expected, got } => {
                write!(f, "violation mismatch: expected {expected}, got {got}")
            }
            ReproError::Sim(m) => write!(f, "simulation failed: {m}"),
        }
    }
}

impl std::error::Error for ReproError {}

impl From<seesaw_check::BundleError> for ReproError {
    fn from(e: seesaw_check::BundleError) -> Self {
        ReproError::Bundle(e.message)
    }
}

fn cfg_err(message: impl Into<String>) -> ReproError {
    ReproError::Config(message.into())
}

/// The tree's git SHA for bundle provenance: `SEESAW_GIT_SHA` when set
/// (CI can pin it without a work tree), else `git rev-parse`, else
/// `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("SEESAW_GIT_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Assembles the bundle for a violation caught by `core`'s checker.
/// Called by the simulator at the moment of failure, while the cores
/// still hold their injectors' fired-point logs.
pub(crate) fn build_bundle(
    config: &RunConfig,
    fault: FaultConfig,
    cores: &[Core],
    core: usize,
    violation: &Violation,
    event_tail: Vec<String>,
) -> ReproBundle {
    let recorded = cores
        .iter()
        .map(|c| {
            FaultSchedule::new(
                c.injector
                    .as_ref()
                    .map(|inj| inj.fired().to_vec())
                    .unwrap_or_default(),
            )
        })
        .collect();
    let mut faults = InjectionStats::default();
    for c in cores {
        if let Some(inj) = c.injector.as_ref() {
            let InjectionStats {
                splinters,
                promotions,
                shootdowns,
                tft_storms,
                context_switches,
                mem_pressure,
                mem_releases,
            } = inj.stats();
            faults.splinters += splinters;
            faults.promotions += promotions;
            faults.shootdowns += shootdowns;
            faults.tft_storms += tft_storms;
            faults.context_switches += context_switches;
            faults.mem_pressure += mem_pressure;
            faults.mem_releases += mem_releases;
        }
    }
    let summary = cores[core]
        .checker
        .as_ref()
        .map(|c| c.summary())
        .unwrap_or_default();
    ReproBundle {
        version: BUNDLE_VERSION,
        git_sha: git_sha(),
        fingerprint: fingerprint(config),
        cores: config.cores,
        violation: BundleViolation {
            kind: violation.kind.name().to_string(),
            instruction: violation.instruction,
            core,
            detail: violation.detail.clone(),
        },
        fault,
        schedules: config.fault_schedules.clone(),
        recorded,
        config: config_kv(config),
        stats: seesaw_check::BundleStats {
            faults,
            loads_checked: summary.loads_checked,
            stores_tracked: summary.stores_tracked,
            audits: summary.audits,
        },
        event_tail,
    }
}

/// Best-effort autosave: when `SEESAW_REPRO=<dir>` is set, every bundle
/// the simulator attaches is also written to
/// `<dir>/repro-<kind>-<instruction>.json`, and the path is returned so
/// the violation (and the persistent result store's failure marker) can
/// carry a durable pointer to it. IO failures — an unwritable or
/// missing directory — log a warning and return `None`: a diagnostics
/// path must never turn a reported violation into a different error,
/// and the in-memory bundle still travels on the violation itself.
pub(crate) fn autosave(bundle: &ReproBundle) -> Option<std::path::PathBuf> {
    let dir = std::env::var("SEESAW_REPRO").ok()?;
    if dir.is_empty() {
        return None;
    }
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "warning: SEESAW_REPRO={dir} could not be created ({e}); \
             the repro bundle stays in-memory only"
        );
        return None;
    }
    let path = std::path::Path::new(&dir).join(format!(
        "repro-{}-{}.json",
        bundle.violation.kind, bundle.violation.instruction
    ));
    match std::fs::write(&path, bundle.to_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "warning: repro bundle autosave to {} failed ({e}); \
                 the bundle stays in-memory only",
                path.display()
            );
            None
        }
    }
}

// ---------------------------------------------------------------------------
// RunConfig ↔ key/value codec
// ---------------------------------------------------------------------------

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "none".to_string(),
    }
}

fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "none".to_string(),
    }
}

/// Serializes every `RunConfig` field (except the injector state, which
/// lives in the bundle's `fault` / `schedules` fields) as ordered
/// key/value pairs. The exhaustive destructuring is deliberate: adding a
/// field to `RunConfig` breaks this function at compile time, forcing
/// the codec — both directions — to learn about it.
pub(crate) fn config_kv(config: &RunConfig) -> Vec<(String, String)> {
    let RunConfig {
        workload,
        l1_size_kb,
        frequency,
        cpu,
        design,
        cores,
        probe_source,
        instructions,
        memhog_percent,
        tft_entries,
        seesaw_partitions,
        insertion,
        snoopy,
        prefetch_degree,
        context_switch_interval,
        page_op_interval,
        l1_tlb_4k_entries,
        scheduler_hint,
        hit_time_squash_cycles,
        warmup_instructions,
        sample_interval,
        checker,
        faults: _,
        fault_schedules: _,
        stop_at_instruction,
        trace,
        seed,
    } = config;
    let design = match design {
        L1DesignKind::BaselineVipt => "baseline-vipt".to_string(),
        L1DesignKind::BaselineWithWayPrediction => "baseline-wp".to_string(),
        L1DesignKind::Seesaw => "seesaw".to_string(),
        L1DesignKind::SeesawWithWayPrediction => "seesaw-wp".to_string(),
        L1DesignKind::Pipt { ways } => format!("pipt:{ways}"),
        L1DesignKind::Vivt { ways } => format!("vivt:{ways}"),
        L1DesignKind::Vespa => "vespa".to_string(),
        L1DesignKind::BaselineMicroTag => "baseline-utag".to_string(),
    };
    vec![
        ("workload".to_string(), workload.name.to_string()),
        ("l1_size_kb".to_string(), l1_size_kb.to_string()),
        ("frequency".to_string(), frequency.label().to_string()),
        (
            "cpu".to_string(),
            match cpu {
                CpuKind::InOrder => "in-order".to_string(),
                CpuKind::OutOfOrder => "out-of-order".to_string(),
            },
        ),
        ("design".to_string(), design),
        ("cores".to_string(), cores.to_string()),
        (
            "probe_source".to_string(),
            match probe_source {
                ProbeSource::Synthetic => "synthetic".to_string(),
                ProbeSource::Coherence => "coherence".to_string(),
            },
        ),
        ("instructions".to_string(), instructions.to_string()),
        ("memhog_percent".to_string(), memhog_percent.to_string()),
        ("tft_entries".to_string(), tft_entries.to_string()),
        (
            "seesaw_partitions".to_string(),
            opt_usize(*seesaw_partitions),
        ),
        (
            "insertion".to_string(),
            match insertion {
                InsertionPolicy::FourWay => "4way".to_string(),
                InsertionPolicy::FourWayEightWay => "4way-8way".to_string(),
            },
        ),
        ("snoopy".to_string(), snoopy.to_string()),
        ("prefetch_degree".to_string(), opt_usize(*prefetch_degree)),
        (
            "context_switch_interval".to_string(),
            opt_u64(*context_switch_interval),
        ),
        ("page_op_interval".to_string(), opt_u64(*page_op_interval)),
        (
            "l1_tlb_4k_entries".to_string(),
            opt_usize(*l1_tlb_4k_entries),
        ),
        (
            "scheduler_hint".to_string(),
            match scheduler_hint {
                SchedulerHintPolicy::Occupancy => "occupancy".to_string(),
                SchedulerHintPolicy::AlwaysFast => "always-fast".to_string(),
                SchedulerHintPolicy::AlwaysSlow => "always-slow".to_string(),
            },
        ),
        (
            "hit_time_squash_cycles".to_string(),
            hit_time_squash_cycles.to_string(),
        ),
        (
            "warmup_instructions".to_string(),
            opt_u64(*warmup_instructions),
        ),
        ("sample_interval".to_string(), opt_u64(*sample_interval)),
        ("checker".to_string(), checker.to_string()),
        ("trace".to_string(), trace.to_string()),
        (
            "stop_at_instruction".to_string(),
            opt_u64(*stop_at_instruction),
        ),
        ("seed".to_string(), format!("{seed:#x}")),
    ]
}

fn parse_u64(key: &str, v: &str) -> Result<u64, ReproError> {
    v.parse()
        .map_err(|_| cfg_err(format!("key {key:?}: expected an integer, got {v:?}")))
}

fn parse_usize(key: &str, v: &str) -> Result<usize, ReproError> {
    v.parse()
        .map_err(|_| cfg_err(format!("key {key:?}: expected an integer, got {v:?}")))
}

fn parse_bool(key: &str, v: &str) -> Result<bool, ReproError> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(cfg_err(format!("key {key:?}: expected a boolean, got {v:?}"))),
    }
}

fn parse_opt_u64(key: &str, v: &str) -> Result<Option<u64>, ReproError> {
    if v == "none" {
        Ok(None)
    } else {
        parse_u64(key, v).map(Some)
    }
}

fn parse_opt_usize(key: &str, v: &str) -> Result<Option<usize>, ReproError> {
    if v == "none" {
        Ok(None)
    } else {
        parse_usize(key, v).map(Some)
    }
}

/// Rebuilds a [`RunConfig`] from a bundle's key/value pairs. The
/// injector fields come back disabled — [`replay`] and [`shrink`]
/// install the bundle's own `fault` / `schedules`.
pub(crate) fn config_from_kv(kv: &[(String, String)]) -> Result<RunConfig, ReproError> {
    let get = |key: &str| -> Result<&str, ReproError> {
        kv.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| cfg_err(format!("missing key {key:?}")))
    };
    let name = get("workload")?;
    if !catalog().iter().any(|w| w.name == name) {
        return Err(cfg_err(format!("unknown workload {name:?}")));
    }
    let mut config = RunConfig::paper(name);
    config.l1_size_kb = parse_u64("l1_size_kb", get("l1_size_kb")?)?;
    let freq = get("frequency")?;
    config.frequency = *Frequency::ALL
        .iter()
        .find(|f| f.label() == freq)
        .ok_or_else(|| cfg_err(format!("unknown frequency {freq:?}")))?;
    config.cpu = match get("cpu")? {
        "in-order" => CpuKind::InOrder,
        "out-of-order" => CpuKind::OutOfOrder,
        other => return Err(cfg_err(format!("unknown cpu {other:?}"))),
    };
    let design = get("design")?;
    config.design = match design {
        "baseline-vipt" => L1DesignKind::BaselineVipt,
        "baseline-wp" => L1DesignKind::BaselineWithWayPrediction,
        "seesaw" => L1DesignKind::Seesaw,
        "seesaw-wp" => L1DesignKind::SeesawWithWayPrediction,
        "vespa" => L1DesignKind::Vespa,
        "baseline-utag" => L1DesignKind::BaselineMicroTag,
        other => match other.split_once(':') {
            Some(("pipt", ways)) => L1DesignKind::Pipt {
                ways: parse_usize("design", ways)?,
            },
            Some(("vivt", ways)) => L1DesignKind::Vivt {
                ways: parse_usize("design", ways)?,
            },
            _ => return Err(cfg_err(format!("unknown design {other:?}"))),
        },
    };
    config.cores = parse_usize("cores", get("cores")?)?.max(1);
    config.probe_source = match get("probe_source")? {
        "synthetic" => ProbeSource::Synthetic,
        "coherence" => ProbeSource::Coherence,
        other => return Err(cfg_err(format!("unknown probe source {other:?}"))),
    };
    config.instructions = parse_u64("instructions", get("instructions")?)?;
    config.memhog_percent = parse_u64("memhog_percent", get("memhog_percent")?)? as u32;
    config.tft_entries = parse_usize("tft_entries", get("tft_entries")?)?;
    config.seesaw_partitions = parse_opt_usize("seesaw_partitions", get("seesaw_partitions")?)?;
    config.insertion = match get("insertion")? {
        "4way" => InsertionPolicy::FourWay,
        "4way-8way" => InsertionPolicy::FourWayEightWay,
        other => return Err(cfg_err(format!("unknown insertion policy {other:?}"))),
    };
    config.snoopy = parse_bool("snoopy", get("snoopy")?)?;
    config.prefetch_degree = parse_opt_usize("prefetch_degree", get("prefetch_degree")?)?;
    config.context_switch_interval =
        parse_opt_u64("context_switch_interval", get("context_switch_interval")?)?;
    config.page_op_interval = parse_opt_u64("page_op_interval", get("page_op_interval")?)?;
    config.l1_tlb_4k_entries = parse_opt_usize("l1_tlb_4k_entries", get("l1_tlb_4k_entries")?)?;
    config.scheduler_hint = match get("scheduler_hint")? {
        "occupancy" => SchedulerHintPolicy::Occupancy,
        "always-fast" => SchedulerHintPolicy::AlwaysFast,
        "always-slow" => SchedulerHintPolicy::AlwaysSlow,
        other => return Err(cfg_err(format!("unknown scheduler hint {other:?}"))),
    };
    config.hit_time_squash_cycles =
        parse_u64("hit_time_squash_cycles", get("hit_time_squash_cycles")?)?;
    config.warmup_instructions = parse_opt_u64("warmup_instructions", get("warmup_instructions")?)?;
    config.sample_interval = parse_opt_u64("sample_interval", get("sample_interval")?)?;
    config.checker = parse_bool("checker", get("checker")?)?;
    config.trace = parse_bool("trace", get("trace")?)?;
    config.stop_at_instruction =
        parse_opt_u64("stop_at_instruction", get("stop_at_instruction")?)?;
    let seed = get("seed")?;
    let digits = seed
        .strip_prefix("0x")
        .ok_or_else(|| cfg_err(format!("seed must be 0x-prefixed hex, got {seed:?}")))?;
    config.seed = u64::from_str_radix(digits, 16)
        .map_err(|_| cfg_err(format!("invalid seed {seed:?}")))?;
    config.faults = None;
    config.fault_schedules = None;
    Ok(config)
}

// ---------------------------------------------------------------------------
// record / replay
// ---------------------------------------------------------------------------

fn run_direct(config: &RunConfig) -> Result<Option<Box<Violation>>, ReproError> {
    let outcome = System::build(config)
        .map_err(|e| ReproError::Sim(e.to_string()))?
        .run();
    match outcome {
        Ok(_) => Ok(None),
        Err(SimError::Check(v)) => Ok(Some(v)),
        Err(e) => Err(ReproError::Sim(e.to_string())),
    }
}

fn bundle_of(v: Violation) -> Result<ReproBundle, ReproError> {
    v.repro
        .map(|b| *b)
        .ok_or_else(|| ReproError::Sim("violation carried no repro bundle".to_string()))
}

/// Runs a fault-injected configuration and returns the bundle of its
/// first checker violation.
///
/// The configuration is normalized before running — checker and tracer
/// forced on, warmup split set to zero so every fault position is a
/// plain global instruction count — and the *normalized* configuration
/// is what the bundle stores, so replays are exactly self-consistent.
///
/// # Errors
/// [`ReproError::Config`] when no injector is configured,
/// [`ReproError::NoViolation`] when the run completes cleanly.
pub fn record(config: &RunConfig) -> Result<ReproBundle, ReproError> {
    if config.faults.is_none() {
        return Err(cfg_err(
            "record needs a fault injector (RunConfig::with_faults)",
        ));
    }
    let mut cfg = config.clone();
    cfg.checker = true;
    cfg.trace = true;
    cfg.warmup_instructions = Some(0);
    match run_direct(&cfg)? {
        Some(v) => bundle_of(*v),
        None => Err(ReproError::NoViolation),
    }
}

/// The outcome of replaying a bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The violation the replay produced.
    pub violation: BundleViolation,
    /// True when kind and instruction both match the original bundle.
    pub matched: bool,
    /// The fresh bundle the replay emitted (its stats must match the
    /// original's for a bit-identical reproduction).
    pub bundle: ReproBundle,
}

/// Re-runs a bundle's configuration verbatim and checks that the same
/// violation recurs. Goes through [`System`] directly — never the memo
/// cache — so every replay is a genuine re-simulation.
///
/// # Errors
/// [`ReproError::NoViolation`] when the replay completes cleanly,
/// [`ReproError::Mismatch`] when a *different* violation kind fired.
pub fn replay(original: &ReproBundle) -> Result<ReplayReport, ReproError> {
    let mut config = config_from_kv(&original.config)?;
    config.faults = Some(original.fault);
    config.fault_schedules = original.schedules.clone();
    config.checker = true;
    let v = run_direct(&config)?.ok_or(ReproError::NoViolation)?;
    let got_kind = v.kind.name().to_string();
    if got_kind != original.violation.kind {
        return Err(ReproError::Mismatch {
            expected: original.violation.kind.clone(),
            got: got_kind,
        });
    }
    let bundle = bundle_of(*v)?;
    let matched = bundle.violation.kind == original.violation.kind
        && bundle.violation.instruction == original.violation.instruction;
    Ok(ReplayReport {
        violation: bundle.violation.clone(),
        matched,
        bundle,
    })
}

// ---------------------------------------------------------------------------
// shrink
// ---------------------------------------------------------------------------

/// What the shrinker did, for logs and the `repro.*` metrics namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkReport {
    /// Scheduled points in the input bundle.
    pub original_points: usize,
    /// Points in the minimal explicit schedule.
    pub shrunk_points: usize,
    /// Instruction budget of the input bundle.
    pub original_budget: u64,
    /// Instruction budget of the shrunk bundle (first failing prefix).
    pub shrunk_budget: u64,
    /// Fault kinds removed wholesale by the greedy pass.
    pub kinds_disabled: Vec<String>,
    /// Candidate simulations evaluated (memo hits included).
    pub candidates: u64,
    /// ddmin rounds executed.
    pub rounds: u64,
}

impl Collect for ShrinkReport {
    fn collect(&self, prefix: &str, out: &mut MetricsRegistry) {
        let ShrinkReport {
            original_points,
            shrunk_points,
            original_budget,
            shrunk_budget,
            kinds_disabled,
            candidates,
            rounds,
        } = self;
        out.set_u64(&format!("{prefix}.original_points"), *original_points as u64);
        out.set_u64(&format!("{prefix}.shrunk_points"), *shrunk_points as u64);
        out.set_u64(&format!("{prefix}.original_budget"), *original_budget);
        out.set_u64(&format!("{prefix}.shrunk_budget"), *shrunk_budget);
        out.set_u64(
            &format!("{prefix}.kinds_disabled"),
            kinds_disabled.len() as u64,
        );
        out.set_u64(&format!("{prefix}.candidates"), *candidates);
        out.set_u64(&format!("{prefix}.rounds"), *rounds);
    }
}

/// A shrunk bundle plus the statistics of the shrink that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The minimal bundle: explicit schedules, truncated budget, fresh
    /// event tail from the final reproducing run.
    pub bundle: ReproBundle,
    /// What the shrinker did.
    pub report: ShrinkReport,
}

/// Batches candidate configurations through the runner (parallel
/// workers, failure memoization) and maps each outcome to the violation
/// it produced, if any.
fn probe_batch(
    configs: &[RunConfig],
    candidates: &mut u64,
) -> Vec<Option<Box<Violation>>> {
    *candidates += configs.len() as u64;
    // Shrinker probes fail by construction and never recur across
    // processes, so they must not pollute a sweep's persistent store.
    let mut plan = Plan::new().without_store();
    for (i, cfg) in configs.iter().enumerate() {
        plan.push(format!("shrink-probe-{i}"), cfg.clone());
    }
    plan.run_each()
        .outcomes
        .into_iter()
        .map(|o| match o {
            Err(SimError::Check(v)) => Some(v),
            _ => None,
        })
        .collect()
}

fn fails_with(v: &Option<Box<Violation>>, kind: &str) -> bool {
    v.as_ref().is_some_and(|v| v.kind.name() == kind)
}

fn to_schedules(flat: &[(usize, FaultPoint)], cores: usize) -> Vec<FaultSchedule> {
    let mut per_core: Vec<Vec<FaultPoint>> = vec![Vec::new(); cores];
    for (core, point) in flat {
        per_core[*core].push(*point);
    }
    per_core.into_iter().map(FaultSchedule::new).collect()
}

/// Delta-debugs a bundle down to a minimal explicit schedule (see the
/// module docs for the three phases and the soundness argument).
///
/// # Errors
/// [`ReproError::Mismatch`] when the warmup-normalized configuration no
/// longer produces the bundle's violation kind (the one normalization
/// this module applies is verified, not assumed), [`ReproError::Sim`]
/// when a minimized schedule unexpectedly stops reproducing.
pub fn shrink(original: &ReproBundle) -> Result<ShrinkOutcome, ReproError> {
    let target = original.violation.kind.clone();
    let mut base = config_from_kv(&original.config)?;
    base.checker = true;
    base.trace = false;
    base.faults = Some(original.fault);
    base.fault_schedules = original.schedules.clone();
    base.warmup_instructions = Some(0);
    base.stop_at_instruction = None;
    let original_budget = base.instructions;
    let mut candidates = 0u64;

    // Validate the normalization: the full-horizon run must still fail
    // with the bundle's violation kind.
    let v0 = probe_batch(std::slice::from_ref(&base), &mut candidates)
        .pop()
        .flatten()
        .ok_or(ReproError::NoViolation)?;
    if v0.kind.name() != target {
        return Err(ReproError::Mismatch {
            expected: target,
            got: v0.kind.name().to_string(),
        });
    }
    let mut best = bundle_of(*v0)?;

    // Phase A: bisect the instruction budget to the first failing
    // prefix. Probing three interior quartiles per round keeps the
    // workers busy while still converging like a bisection.
    let mut lo = 0u64; // zero instructions cannot fail
    let mut hi = original_budget; // known to fail (v0)
    while hi - lo > 1 {
        let span = hi - lo;
        let mut probes: Vec<u64> = [span / 4, span / 2, span - span / 4]
            .into_iter()
            .map(|d| lo + d)
            .filter(|&b| b > lo && b < hi)
            .collect();
        probes.dedup();
        if probes.is_empty() {
            break;
        }
        let cfgs: Vec<RunConfig> = probes
            .iter()
            .map(|&b| base.clone().instructions(b))
            .collect();
        let outs = probe_batch(&cfgs, &mut candidates);
        for (b, out) in probes.into_iter().zip(outs) {
            if fails_with(&out, &target) {
                hi = b;
                best = bundle_of(*out.expect("checked by fails_with"))?;
                break;
            }
            lo = lo.max(b);
        }
    }
    let shrunk_budget = hi;
    base.instructions = shrunk_budget;
    base.stop_at_instruction = Some(best.violation.instruction + 1);

    // The recorded points of the minimal-budget failing run are the raw
    // material for the schedule minimization.
    let mut flat: Vec<(usize, FaultPoint)> = Vec::new();
    for (core, sched) in best.recorded.iter().enumerate() {
        for p in &sched.points {
            flat.push((core, *p));
        }
    }

    // Phase B: greedily disable whole fault kinds. Each round batches
    // one candidate per surviving kind and adopts the removal that
    // deletes the most points while still reproducing.
    let mut kinds_disabled: Vec<String> = Vec::new();
    loop {
        let mut kinds: Vec<FaultKind> = Vec::new();
        for (_, p) in &flat {
            if !kinds.contains(&p.kind) {
                kinds.push(p.kind);
            }
        }
        if kinds.len() <= 1 {
            break;
        }
        let trials: Vec<(FaultKind, Vec<(usize, FaultPoint)>)> = kinds
            .into_iter()
            .map(|k| {
                let kept: Vec<(usize, FaultPoint)> =
                    flat.iter().filter(|(_, p)| p.kind != k).copied().collect();
                (k, kept)
            })
            .collect();
        let cfgs: Vec<RunConfig> = trials
            .iter()
            .map(|(_, kept)| {
                base.clone()
                    .with_fault_schedules(to_schedules(kept, base.cores))
            })
            .collect();
        let outs = probe_batch(&cfgs, &mut candidates);
        let adopted = trials
            .into_iter()
            .zip(outs)
            .filter(|(_, out)| fails_with(out, &target))
            .min_by_key(|((_, kept), _)| kept.len());
        match adopted {
            Some(((kind, kept), _)) => {
                flat = kept;
                kinds_disabled.push(kind.name().to_string());
            }
            None => break,
        }
    }

    // Phase C: ddmin over the surviving (core, point) list. Subsets
    // first (can a single chunk reproduce alone?), then complements
    // (is a single chunk deletable?); granularity doubles when neither
    // makes progress.
    let mut rounds = 0u64;
    let mut n = 2usize;
    while flat.len() >= 2 && n <= flat.len() {
        rounds += 1;
        let chunk = flat.len().div_ceil(n);
        let chunks: Vec<&[(usize, FaultPoint)]> = flat.chunks(chunk).collect();
        let mut trials: Vec<Vec<(usize, FaultPoint)>> = Vec::new();
        for c in &chunks {
            trials.push(c.to_vec());
        }
        for i in 0..chunks.len() {
            let complement: Vec<(usize, FaultPoint)> = chunks
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, c)| c.iter().copied())
                .collect();
            trials.push(complement);
        }
        let cfgs: Vec<RunConfig> = trials
            .iter()
            .map(|t| {
                base.clone()
                    .with_fault_schedules(to_schedules(t, base.cores))
            })
            .collect();
        let outs = probe_batch(&cfgs, &mut candidates);
        let reduced = trials
            .into_iter()
            .zip(outs)
            .filter(|(t, out)| t.len() < flat.len() && fails_with(out, &target))
            .min_by_key(|(t, _)| t.len());
        match reduced {
            Some((t, _)) => {
                flat = t;
                n = 2;
            }
            None if n < flat.len() => n = (n * 2).min(flat.len()),
            None => break,
        }
    }

    // Final run: the minimal explicit schedule, traced, so the shrunk
    // bundle ships a fresh event tail and its own violation summary.
    let mut final_cfg = base.clone();
    final_cfg.trace = true;
    final_cfg.fault_schedules = Some(to_schedules(&flat, base.cores));
    let v = run_direct(&final_cfg)?.ok_or_else(|| {
        ReproError::Sim("the minimized schedule no longer reproduces the violation".to_string())
    })?;
    if v.kind.name() != target {
        return Err(ReproError::Mismatch {
            expected: target,
            got: v.kind.name().to_string(),
        });
    }
    let bundle = bundle_of(*v)?;
    let report = ShrinkReport {
        original_points: original.schedule_points(),
        shrunk_points: flat.len(),
        original_budget,
        shrunk_budget,
        kinds_disabled,
        candidates,
        rounds,
    };
    Ok(ShrinkOutcome { bundle, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_kv_round_trips_every_field() {
        let mut cfg = RunConfig::quick("redis")
            .design(L1DesignKind::Pipt { ways: 12 })
            .cpu(CpuKind::InOrder)
            .cores(3)
            .l1_size(64)
            .frequency(Frequency::F4_00)
            .memhog(45)
            .instructions(123_456)
            .warmup(7_000)
            .stop_at(99_999)
            .with_checker()
            .with_trace();
        cfg.tft_entries = 20;
        cfg.seesaw_partitions = Some(2);
        cfg.insertion = InsertionPolicy::FourWayEightWay;
        cfg.snoopy = true;
        cfg.prefetch_degree = Some(4);
        cfg.context_switch_interval = None;
        cfg.page_op_interval = Some(40_000);
        cfg.l1_tlb_4k_entries = Some(32);
        cfg.scheduler_hint = SchedulerHintPolicy::AlwaysSlow;
        cfg.hit_time_squash_cycles = 9;
        cfg.sample_interval = Some(10_000);
        cfg.seed = u64::MAX - 3; // exercises the >2^53 hex path

        let back = config_from_kv(&config_kv(&cfg)).unwrap();
        // The codec deliberately drops injector state; compare the rest
        // via the fingerprint after aligning those two fields.
        let mut aligned = cfg.clone();
        aligned.faults = None;
        aligned.fault_schedules = None;
        assert_eq!(fingerprint(&back), fingerprint(&aligned));
    }

    #[test]
    fn config_from_kv_rejects_unknowns() {
        let cfg = RunConfig::quick("redis");
        let mut kv = config_kv(&cfg);
        kv.retain(|(k, _)| k != "seed");
        assert!(matches!(config_from_kv(&kv), Err(ReproError::Config(_))));
        let mut kv = config_kv(&cfg);
        for (k, v) in kv.iter_mut() {
            if k == "design" {
                *v = "quantum".to_string();
            }
        }
        assert!(matches!(config_from_kv(&kv), Err(ReproError::Config(_))));
    }

    #[test]
    fn git_sha_is_never_empty() {
        assert!(!git_sha().is_empty());
    }

    #[test]
    fn record_requires_an_injector() {
        let err = record(&RunConfig::quick("redis")).unwrap_err();
        assert!(matches!(err, ReproError::Config(_)));
    }
}
