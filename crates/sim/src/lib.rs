//! Full-system assembly and experiment drivers for the SEESAW
//! reproduction.
//!
//! [`System`] wires every substrate together — the OS memory model with
//! transparent superpages under memhog-driven fragmentation, the TLB
//! hierarchy, an L1 design (baseline VIPT, SEESAW, PIPT alternatives,
//! with or without way prediction), the outer memory hierarchy, the
//! coherence probe stream, the energy model, and an in-order or
//! out-of-order timing core — and runs a workload trace through it.
//!
//! [`experiments`] hosts one driver per table and figure in the paper's
//! evaluation; the `seesaw-bench` crate's binaries and Criterion benches
//! call straight into them. Every driver executes through [`runner`],
//! the deterministic parallel experiment engine: independent grid cells
//! run across a scoped worker pool and repeated configurations (notably
//! the shared baselines) are memoized per process, bit-identical to a
//! serial sweep. Sweeps are also crash-safe: with `SEESAW_STORE` set,
//! completed cells persist to a content-addressed on-disk [`store`], so
//! a killed sweep resumes from what already finished, and
//! [`Plan::run_sweep`] supervises each cell — panic isolation, watchdog
//! timeouts, deterministic retry backoff, and a configurable failure
//! budget ([`SweepPolicy`]) under which survivors still complete.
//!
//! For robustness work, [`RunConfig::with_checker`] runs the
//! `seesaw-check` differential shadow model in lockstep with the timing
//! system, and [`RunConfig::with_faults`] attaches a seeded injector that
//! fires SEESAW's dangerous transitions (splinters, promotions, TLB
//! shootdowns, TFT conflict storms, context switches, memory pressure)
//! at randomized points. A caught invariant violation surfaces as
//! [`SimError::Check`], carrying a replayable [`ReproBundle`]; the
//! [`repro`] module records, replays, and delta-debugs those bundles
//! down to a minimal explicit [`FaultSchedule`].
//!
//! # Example
//!
//! ```
//! use seesaw_sim::{CpuKind, L1DesignKind, RunConfig, System};
//!
//! let config = RunConfig::quick("redis")
//!     .design(L1DesignKind::Seesaw)
//!     .cpu(CpuKind::OutOfOrder);
//! let result = System::build(&config).unwrap().run().unwrap();
//! assert!(result.totals.instructions >= 100_000);
//! assert!(result.superpage_ref_fraction > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod chart;
mod config;
mod core;
pub mod diff;
mod error;
pub mod experiments;
pub mod fabric;
mod report;
pub mod repro;
pub mod runner;
mod stats;
pub mod status;
pub mod store;
mod system;
mod uncore;

pub use config::{
    CpuKind, Frequency, L1DesignKind, ProbeSource, RunConfig, SchedulerHintPolicy,
    SupervisorConfig, SweepPolicy,
};
pub use chart::BarChart;
pub use diff::{BenchDiff, BenchRun, FigureDelta, FigureStats, MetricDelta};
pub use error::SimError;
pub use report::Table;
pub use status::{OpsSummary, StatusBoard, StatusWriter};
pub use runner::{
    CellChaos, CellContext, CellRecord, FailedCell, MemoStats, Plan, PlanOutcomes, PlanRun,
    SupervisorStats, SweepReport,
};
pub use store::{Store, StoreStats, StoredOutcome};
pub use seesaw_check::{
    ChaosConfig, CheckerSummary, FaultConfig, FaultKind, FaultPoint, FaultSchedule,
    InjectionStats, ReproBundle, Violation,
};
pub use seesaw_coherence::{CoherenceMode, CoherenceStats};
pub use stats::{CoreResult, RunResult, Sample, Summary};
pub use system::System;
