//! Deterministic parallel experiment engine with memoized, supervised,
//! crash-safe runs.
//!
//! The paper's evaluation is a large grid of *independent* simulations:
//! every figure and table sweeps workloads × designs × knobs, and many
//! cells (most prominently the baseline-VIPT runs every comparison
//! divides by) recur across sweeps. This module gives every driver the
//! same engine, in layers:
//!
//! * **A scoped worker pool.** [`Plan`] collects `(label, RunConfig)`
//!   cells and [`Plan::run`] executes them across `std::thread::scope`
//!   workers (no external dependencies — see the rand/proptest/criterion
//!   path shims for why the workspace builds offline). Results come back
//!   in plan order, and because every run is seeded purely by its own
//!   [`RunConfig`], the parallel output is bit-identical to executing the
//!   same plan serially.
//! * **A content-addressed memo cache.** Each config is fingerprinted
//!   (its full `Debug` rendering — every field participates, so two
//!   configs collide only when they are equal) and finished
//!   [`RunResult`]s are kept in a process-wide table. A config that
//!   recurs — across cells of one plan, across plans, across figures in
//!   one binary, or across `cargo test` threads — is simulated once per
//!   process and served from the cache afterwards. Determinism makes
//!   this sound: a memoized result is the result a fresh run would
//!   produce.
//! * **A persistent store behind the cache.** With `SEESAW_STORE=<dir>`
//!   set (or an explicit [`Plan::with_store`]), a memo miss consults the
//!   on-disk [`crate::store`] before simulating, and every fresh outcome
//!   is committed there from inside the supervised cell. A sweep killed
//!   mid-run — `SIGKILL` included — re-executes only the cells that had
//!   not committed, and the resumed results are bit-identical to an
//!   undisturbed serial run (pinned by `tests/chaos.rs`).
//! * **Per-cell supervision.** Every cell executes on its own named
//!   thread under [`SupervisorConfig`]: a panicking cell is isolated
//!   (`catch_unwind`) and reported as [`SimError::Panic`] carrying the
//!   cell label and config digest; a wedged cell trips a wall-clock
//!   watchdog ([`SimError::Timeout`]); transient failures earn capped
//!   exponential backoff retries whose jitter is a pure function of
//!   (seed, cell digest, attempt). Simulation-level failures are
//!   permanent — determinism means they recur identically — and are
//!   never retried.
//! * **Graceful degradation.** [`Plan::run_sweep`] takes a
//!   [`SweepPolicy`]: up to `max_failures` *permanent* cell failures do
//!   not abort the sweep — survivors complete, cells past the budget are
//!   skipped without running, and the [`SweepReport`] lists every failed
//!   cell with its config digest and autosaved repro-bundle path.
//!   [`Plan::run`] keeps fail-fast semantics for drivers that treat any
//!   failure as fatal.
//! * **A multi-process layer on top.** [`crate::fabric`] serializes the
//!   same `(label, RunConfig)` cells onto a work-stealing job queue
//!   inside the store directory; `seesaw-worker` processes execute each
//!   claimed cell through this exact engine (a single-cell
//!   [`Plan::run_sweep`] with the store attached, so supervision and
//!   write-back are shared, not reimplemented), and assembly re-runs the
//!   plan locally where every worker-resolved cell is a store hit —
//!   bit-identical to a single-process run. DESIGN.md §16 specifies the
//!   wire protocol; docs/DISTRIBUTED.md is the operator's handbook.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `SEESAW_THREADS` environment variable (used by
//! `scripts/check.sh` and `scripts/bench.sh`).
//!
//! # Example
//!
//! ```
//! use seesaw_sim::{runner::Plan, L1DesignKind, RunConfig};
//!
//! let mut plan = Plan::new();
//! let base = plan.push("base", RunConfig::quick("redis"));
//! let seesaw = plan.push("seesaw", RunConfig::quick("redis").design(L1DesignKind::Seesaw));
//! let results = plan.run().unwrap();
//! assert!(results[seesaw].runtime_improvement_pct(&results[base]) > 0.0);
//! ```

use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

use seesaw_trace::ops::{CellProgress, CellState, OpsSweepStats};
use seesaw_trace::{ChromeTrace, Collect, Log2Histogram, MetricsRegistry};

use crate::status::{self, StatusBoard, StatusWriter};
use crate::store::{self, Store, StoreStats, StoredOutcome};
use crate::{RunConfig, RunResult, SimError, SupervisorConfig, SweepPolicy, System};

/// A memoized failure: the error plus the durable pointer to its
/// autosaved repro bundle, so a sweep resumed from the memo (or the
/// persistent store behind it) still reports where the bundle lives.
#[derive(Debug, Clone)]
struct FailureEntry {
    error: SimError,
    bundle_path: Option<PathBuf>,
}

impl FailureEntry {
    fn new(error: SimError) -> Self {
        let bundle_path = error.bundle_path().map(|p| p.to_path_buf());
        FailureEntry { error, bundle_path }
    }
}

/// Process-wide memo cache state. Failures are memoized alongside
/// results: runs are deterministic, so a config that failed once fails
/// identically forever, and the repro shrinker leans on this — most of
/// its delta-debugging candidates *fail by construction* and recur across
/// bisection rounds. Only simulation-level failures are memoized;
/// harness-level ones ([`SimError::Panic`], [`SimError::Timeout`],
/// [`SimError::Skipped`]) are circumstances of one execution, so a later
/// plan retries those cells.
struct MemoState {
    results: HashMap<String, RunResult>,
    failures: HashMap<String, FailureEntry>,
    hits: u64,
    misses: u64,
}

static MEMO: OnceLock<Mutex<MemoState>> = OnceLock::new();

fn memo() -> &'static Mutex<MemoState> {
    MEMO.get_or_init(|| {
        Mutex::new(MemoState {
            results: HashMap::new(),
            failures: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// A snapshot of the process-wide memo cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Plan cells served from the cache (including duplicates inside one
    /// plan, which are simulated once, and cells served from the
    /// persistent store).
    pub hits: u64,
    /// Plan cells that required a fresh simulation.
    pub misses: u64,
    /// Distinct configurations currently cached.
    pub entries: usize,
}

/// The process-wide wall-clock origin every plan journal is stamped
/// against, so spans from successive plans in one binary land on one
/// consistent Chrome-trace timeline.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

fn process_origin() -> Instant {
    *ORIGIN.get_or_init(Instant::now)
}

/// Every cell journaled by every [`Plan::run`] in this process, in
/// completion order of the plans.
static SESSION: OnceLock<Mutex<Vec<CellRecord>>> = OnceLock::new();

fn session() -> &'static Mutex<Vec<CellRecord>> {
    SESSION.get_or_init(|| Mutex::new(Vec::new()))
}

/// A copy of the process-wide plan journal: one [`CellRecord`] per cell
/// of every plan run so far, stamped against one shared origin.
pub fn session_journal() -> Vec<CellRecord> {
    session().lock().expect("session lock").clone()
}

/// Renders the process-wide plan journal as a Chrome `trace_event`
/// document (see [`PlanRun::chrome_trace`] for the per-plan variant).
pub fn session_chrome_trace(name: &str) -> String {
    chrome_trace_of(name, &session_journal())
}

/// Shared Chrome-trace renderer: one track per worker, complete spans
/// for fresh simulations, instant events for memo hits.
fn chrome_trace_of(plan_name: &str, journal: &[CellRecord]) -> String {
    let mut t = ChromeTrace::new();
    t.process_name(1, plan_name);
    t.thread_name(1, 0, "memo cache");
    let mut workers: Vec<usize> = journal
        .iter()
        .filter(|c| !c.memo_hit)
        .map(|c| c.worker)
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        t.thread_name(1, w as u64 + 1, &format!("worker {w}"));
    }
    for cell in journal {
        if cell.memo_hit {
            t.instant(&cell.label, "memo", 1, 0, cell.start_us, &[("memo", "hit")]);
        } else {
            t.complete(
                &cell.label,
                "cell",
                1,
                cell.worker as u64 + 1,
                cell.start_us,
                cell.dur_us,
                &[("memo", "miss")],
            );
        }
    }
    t.render()
}

impl Collect for MemoStats {
    fn collect(&self, prefix: &str, out: &mut MetricsRegistry) {
        let MemoStats {
            hits,
            misses,
            entries,
        } = *self;
        out.set_u64(&format!("{prefix}.hits"), hits);
        out.set_u64(&format!("{prefix}.misses"), misses);
        out.set_u64(&format!("{prefix}.entries"), entries as u64);
    }
}

/// Returns the memo-cache counters accumulated so far in this process.
pub fn memo_stats() -> MemoStats {
    let m = memo().lock().expect("memo lock");
    MemoStats {
        hits: m.hits,
        misses: m.misses,
        entries: m.results.len(),
    }
}

/// The content address of a configuration: its complete `Debug`
/// rendering. Every `RunConfig` field derives `Debug`, so the fingerprint
/// changes whenever any knob changes and two fingerprints are equal only
/// for equal configs — no hand-maintained hash to fall out of sync.
pub fn fingerprint(config: &RunConfig) -> String {
    format!("{config:?}")
}

/// The worker count: `SEESAW_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn worker_threads() -> usize {
    match std::env::var("SEESAW_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// An ordered parallel map: applies `f` to every item across the worker
/// pool and returns the outputs in input order. Used directly by drivers
/// whose unit of work is not a full [`RunConfig`] simulation (e.g. the
/// Fig. 2a functional cache sweep) and by [`Plan::run`] underneath.
pub fn parallel_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    parallel_map_with(worker_threads(), items, f)
}

fn parallel_map_with<T, R>(threads: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every slot filled by a worker")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Supervision: chaos hook, panic silencing, supervised cell execution.
// ---------------------------------------------------------------------------

/// What the chaos hook tells a cell to do (see [`set_cell_chaos_hook`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellChaos {
    /// Run normally.
    Continue,
    /// Panic before simulating — exercises the supervisor's
    /// `catch_unwind` isolation.
    Panic,
    /// Sleep this long before simulating — exercises the watchdog.
    HangMs(u64),
    /// Simulate normally, then sleep this long before the store
    /// write-back completes — exercises a timeout firing during
    /// write-back.
    HangAfterRunMs(u64),
}

/// What the chaos hook sees about the cell it is deciding for.
#[derive(Debug)]
pub struct CellContext<'a> {
    /// The plan label of the cell.
    pub label: &'a str,
    /// Which attempt this is (0 = first).
    pub attempt: u32,
}

/// The chaos hook's type: called with the cell's context, returns the
/// fault to inject (or [`CellChaos::Continue`]).
pub type ChaosHook = Arc<dyn Fn(&CellContext<'_>) -> CellChaos + Send + Sync>;

static CHAOS_HOOK: OnceLock<Mutex<Option<ChaosHook>>> = OnceLock::new();

fn chaos_hook_slot() -> &'static Mutex<Option<ChaosHook>> {
    CHAOS_HOOK.get_or_init(|| Mutex::new(None))
}

/// Installs (or with `None`, removes) the process-wide chaos hook the
/// supervisor consults at the top of every cell attempt — *inside* the
/// supervised thread, so injected panics and hangs travel the real
/// `catch_unwind`/watchdog paths. Test-only machinery: the chaos tests
/// and `chaos_smoke` use it to fault the harness on demand; production
/// sweeps never install one.
pub fn set_cell_chaos_hook(hook: Option<ChaosHook>) {
    *chaos_hook_slot().lock().expect("chaos hook lock") = hook;
}

fn consult_chaos(ctx: &CellContext<'_>) -> CellChaos {
    let hook = chaos_hook_slot().lock().expect("chaos hook lock").clone();
    match hook {
        Some(h) => h(ctx),
        None => CellChaos::Continue,
    }
}

/// Prefix of every supervised cell thread's name; the panic silencer
/// keys on it.
const CELL_THREAD_PREFIX: &str = "seesaw-cell-";

/// Installs (once per process) a panic hook that suppresses the default
/// stderr backtrace for supervised cell threads — their panics are
/// *caught*, converted to [`SimError::Panic`], and reported through the
/// sweep, so the default print would be noise (and the chaos tests panic
/// on purpose, hundreds of times). Every other thread keeps the previous
/// hook's behavior.
fn install_cell_panic_silencer() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let silenced = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(CELL_THREAD_PREFIX));
            if !silenced {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-plan supervision tally, folded into the process-wide counters
/// when the plan finishes.
#[derive(Default)]
struct SupervisorTally {
    cells: AtomicU64,
    panics_caught: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    permanent_failures: AtomicU64,
    cells_skipped: AtomicU64,
}

impl SupervisorTally {
    fn snapshot(&self) -> SupervisorStats {
        SupervisorStats {
            cells: self.cells.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            permanent_failures: self.permanent_failures.load(Ordering::Relaxed),
            cells_skipped: self.cells_skipped.load(Ordering::Relaxed),
        }
    }
}

/// Counters of supervised cell execution, exported under the
/// `supervisor.*` namespace. [`SweepReport::supervisor`] carries one
/// plan's tally; [`supervisor_stats`] the process-wide accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Cells executed under supervision (not counting retries).
    pub cells: u64,
    /// Panics isolated by `catch_unwind` across all attempts.
    pub panics_caught: u64,
    /// Watchdog expirations across all attempts.
    pub timeouts: u64,
    /// Retry attempts granted (each preceded by a backoff sleep).
    pub retries: u64,
    /// Cells whose final outcome was a permanent failure.
    pub permanent_failures: u64,
    /// Cells never started because the sweep's failure budget
    /// ([`SweepPolicy::max_failures`]) was already exhausted.
    pub cells_skipped: u64,
}

impl Collect for SupervisorStats {
    fn collect(&self, prefix: &str, out: &mut MetricsRegistry) {
        let SupervisorStats {
            cells,
            panics_caught,
            timeouts,
            retries,
            permanent_failures,
            cells_skipped,
        } = *self;
        out.set_u64(&format!("{prefix}.cells"), cells);
        out.set_u64(&format!("{prefix}.panics_caught"), panics_caught);
        out.set_u64(&format!("{prefix}.timeouts"), timeouts);
        out.set_u64(&format!("{prefix}.retries"), retries);
        out.set_u64(&format!("{prefix}.permanent_failures"), permanent_failures);
        out.set_u64(&format!("{prefix}.cells_skipped"), cells_skipped);
    }
}

static SUPERVISOR_TOTALS: OnceLock<Mutex<SupervisorStats>> = OnceLock::new();

fn supervisor_totals() -> &'static Mutex<SupervisorStats> {
    SUPERVISOR_TOTALS.get_or_init(|| Mutex::new(SupervisorStats::default()))
}

/// The supervision counters accumulated so far in this process.
pub fn supervisor_stats() -> SupervisorStats {
    *supervisor_totals().lock().expect("supervisor lock")
}

fn fold_supervisor_totals(delta: SupervisorStats) {
    let mut t = supervisor_totals().lock().expect("supervisor lock");
    t.cells += delta.cells;
    t.panics_caught += delta.panics_caught;
    t.timeouts += delta.timeouts;
    t.retries += delta.retries;
    t.permanent_failures += delta.permanent_failures;
    t.cells_skipped += delta.cells_skipped;
}

static SESSION_OPS: OnceLock<Mutex<OpsSweepStats>> = OnceLock::new();

fn session_ops_slot() -> &'static Mutex<OpsSweepStats> {
    SESSION_OPS.get_or_init(|| Mutex::new(OpsSweepStats::default()))
}

fn fold_session_ops(delta: &OpsSweepStats) {
    let mut t = session_ops_slot().lock().expect("session ops lock");
    t.cells += delta.cells;
    t.done += delta.done;
    t.failed += delta.failed;
    t.skipped += delta.skipped;
    t.cached += delta.cached;
    t.instructions += delta.instructions;
}

/// The process-wide accumulation of every sweep's terminal ops rollup
/// (cell state counts, fresh-simulation instructions), with the
/// throughput recomputed over the process journal origin — the
/// `ops.sweep.*` numbers the bench epilogue exports to Prometheus.
pub fn session_ops() -> OpsSweepStats {
    let mut s = *session_ops_slot().lock().expect("session ops lock");
    let elapsed = process_origin().elapsed().as_secs_f64();
    if elapsed > 0.0 {
        s.minstr_per_sec = s.instructions as f64 / elapsed / 1e6;
    }
    s
}

/// One attempt of one cell on its own named thread. The simulation, the
/// chaos hook, and the store write-back all happen *inside* the thread,
/// behind `catch_unwind`, so a panic anywhere in that path is isolated
/// and a wedge anywhere in that path (write-back included) trips the
/// watchdog. A timed-out thread is leaked — safe Rust cannot kill a
/// thread — which is harmless: its eventual store write (if any) goes
/// through the same atomic tmp+rename commit as everyone else's.
fn attempt_cell(
    label: &str,
    key: &str,
    config: &RunConfig,
    attempt: u32,
    store_handle: Option<&Arc<Store>>,
    timeout: Option<Duration>,
    progress: Option<Arc<CellProgress>>,
) -> Result<RunResult, SimError> {
    install_cell_panic_silencer();
    let digest = store::digest(key);
    let (tx, rx) = mpsc::channel::<Result<RunResult, SimError>>();
    let thread_label = label.to_string();
    let thread_key = key.to_string();
    let thread_config = config.clone();
    let thread_store = store_handle.cloned();
    let thread_digest = digest.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("{CELL_THREAD_PREFIX}{}", &digest[..8]))
        .spawn(move || {
            // The heartbeat is per *attempt*: this fresh thread installs
            // its own Arc, so a previous watchdog-killed attempt — still
            // running somewhere, unkillable in safe Rust — keeps writing
            // into an Arc the status board no longer reads.
            status::set_cell_progress(progress);
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut hang_after_ms = None;
                match consult_chaos(&CellContext {
                    label: &thread_label,
                    attempt,
                }) {
                    CellChaos::Continue => {}
                    CellChaos::Panic => panic!("chaos: injected cell panic"),
                    CellChaos::HangMs(ms) => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    CellChaos::HangAfterRunMs(ms) => hang_after_ms = Some(ms),
                }
                let result = System::build(&thread_config).and_then(System::run);
                if let Some(ms) = hang_after_ms {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                if let Some(store) = &thread_store {
                    match &result {
                        Ok(r) => store.put_result(&thread_key, r),
                        Err(e) => store.put_failure(&thread_key, e),
                    }
                }
                result
            }));
            let message = match outcome {
                Ok(result) => result,
                Err(payload) => Err(SimError::Panic {
                    cell: thread_label,
                    fingerprint: thread_digest,
                    message: panic_message(payload),
                }),
            };
            let _ = tx.send(message);
        });
    if let Err(e) = spawned {
        return Err(SimError::Panic {
            cell: label.to_string(),
            fingerprint: digest,
            message: format!("cell thread could not be spawned: {e}"),
        });
    }
    match timeout {
        Some(t) => rx.recv_timeout(t).unwrap_or_else(|_| {
            Err(SimError::Timeout {
                cell: label.to_string(),
                timeout_ms: t.as_millis() as u64,
            })
        }),
        None => rx.recv().unwrap_or_else(|_| {
            Err(SimError::Panic {
                cell: label.to_string(),
                fingerprint: digest,
                message: "cell thread exited without reporting".to_string(),
            })
        }),
    }
}

/// Supervised execution of one cell: attempts under
/// [`attempt_cell`], retrying transient failures per the config's
/// backoff schedule. Pure control flow — all nondeterminism (which
/// attempt succeeds) comes from the chaos hook or the host, and the
/// backoff delays themselves are a pure function of (seed, digest,
/// attempt).
fn run_supervised(
    label: &str,
    key: &str,
    config: &RunConfig,
    sup: &SupervisorConfig,
    store_handle: Option<&Arc<Store>>,
    tally: &SupervisorTally,
    status: Option<(&StatusBoard, &[usize])>,
) -> Result<RunResult, SimError> {
    tally.cells.fetch_add(1, Ordering::Relaxed);
    let digest = store::digest64(key);
    let mut attempt = 0u32;
    loop {
        let progress = status.map(|(board, cells)| board.start_attempt(cells, attempt));
        let outcome = attempt_cell(
            label,
            key,
            config,
            attempt,
            store_handle,
            sup.timeout,
            progress,
        );
        match &outcome {
            Err(SimError::Panic { .. }) => {
                tally.panics_caught.fetch_add(1, Ordering::Relaxed);
            }
            Err(SimError::Timeout { .. }) => {
                tally.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        match outcome {
            Ok(result) => {
                if let Some((board, cells)) = status {
                    board.finish(cells, CellState::Done);
                }
                return Ok(result);
            }
            Err(e) if e.is_retryable() && attempt < sup.max_retries => {
                tally.retries.fetch_add(1, Ordering::Relaxed);
                if let Some((board, cells)) = status {
                    board.retrying(cells, attempt + 1);
                }
                std::thread::sleep(sup.backoff_delay(digest, attempt));
                attempt += 1;
            }
            Err(e) => {
                if let Some((board, cells)) = status {
                    board.finish(cells, CellState::Failed);
                }
                return Err(e);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plans.
// ---------------------------------------------------------------------------

/// Which persistent store a plan consults (and commits to).
#[derive(Debug, Clone, Default)]
enum StoreMode {
    /// The process store named by `SEESAW_STORE`, when set.
    #[default]
    Env,
    /// An explicit store handle (tests use this to avoid env coupling).
    Explicit(Arc<Store>),
    /// No persistence, even if `SEESAW_STORE` is set.
    Disabled,
}

/// Where a sweep publishes live `status.json` snapshots (mirrors
/// [`StoreMode`]).
#[derive(Debug, Clone, Default)]
enum StatusMode {
    /// The directory named by `SEESAW_STATUS`, when set.
    #[default]
    Env,
    /// An explicit directory (tests use this to avoid env coupling).
    Explicit(PathBuf),
    /// No live status, even if `SEESAW_STATUS` is set.
    Disabled,
}

/// An ordered grid of labelled simulation cells.
///
/// Drivers push one cell per `System::build(..)?.run()?` they need,
/// remember the returned indices, call [`Plan::run`] once, and assemble
/// their rows from the ordered results. See the module docs for the
/// execution, memoization, persistence, and supervision model.
#[derive(Debug, Default)]
pub struct Plan {
    cells: Vec<(String, RunConfig)>,
    threads: Option<usize>,
    store: StoreMode,
    status: StatusMode,
    name: Option<String>,
}

impl Plan {
    /// An empty plan using the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plan pinned to `threads` workers (tests use this to
    /// exercise the parallel path regardless of the host's core count).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
            ..Self::default()
        }
    }

    /// Builder: persist and resume through this explicit store instead
    /// of the `SEESAW_STORE` process store.
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = StoreMode::Explicit(store);
        self
    }

    /// Builder: never touch a persistent store, even if `SEESAW_STORE`
    /// is set (replays and shrinker probes use this — their cells fail
    /// by construction and must not pollute a sweep's store).
    pub fn without_store(mut self) -> Self {
        self.store = StoreMode::Disabled;
        self
    }

    /// Builder: names the sweep (shown in `status.json` and the
    /// `seesaw-status` CLI; defaults to `"sweep"`).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Builder: publish live status snapshots to this directory instead
    /// of (or regardless of) `SEESAW_STATUS`.
    pub fn with_status(mut self, dir: impl Into<PathBuf>) -> Self {
        self.status = StatusMode::Explicit(dir.into());
        self
    }

    /// Builder: never publish live status, even if `SEESAW_STATUS` is
    /// set (replays and shrinker probes use this — dozens of throwaway
    /// probe plans would otherwise fight over one `status.json`).
    pub fn without_status(mut self) -> Self {
        self.status = StatusMode::Disabled;
        self
    }

    fn resolve_store(&self) -> Option<Arc<Store>> {
        match &self.store {
            StoreMode::Env => store::process_store().cloned(),
            StoreMode::Explicit(s) => Some(s.clone()),
            StoreMode::Disabled => None,
        }
    }

    fn resolve_status_dir(&self) -> Option<PathBuf> {
        match &self.status {
            StatusMode::Env => status::status_dir_from_env(),
            StatusMode::Explicit(d) => Some(d.clone()),
            StatusMode::Disabled => None,
        }
    }

    /// Appends a cell and returns its index into [`Plan::run`]'s output.
    pub fn push(&mut self, label: impl Into<String>, config: RunConfig) -> usize {
        self.cells.push((label.into(), config));
        self.cells.len() - 1
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Executes every cell — distinct configurations in parallel, each
    /// simulated at most once per process — and returns the results in
    /// plan order, along with this plan's memo-cache deltas and a
    /// wall-clock journal of which worker simulated which cell when.
    ///
    /// # Errors
    /// Returns the error of the earliest cell (in plan order) whose
    /// simulation failed — the same error a serial front-to-back
    /// execution of the plan would have surfaced first.
    pub fn run(self) -> Result<PlanRun, SimError> {
        let PlanOutcomes {
            outcomes,
            memo,
            journal,
            threads,
        } = self.run_each();
        let mut results = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            results.push(outcome?);
        }
        Ok(PlanRun {
            results,
            memo,
            journal,
            threads,
        })
    }

    /// Like [`Plan::run`], but a failing cell does not abort the plan:
    /// every cell's outcome comes back in plan order as its own
    /// `Result`. This is the entry point for callers that *expect*
    /// failures — the repro shrinker probes dozens of configurations per
    /// round precisely to learn which ones still violate the checker.
    ///
    /// Equivalent to [`Plan::run_sweep`] with the environment-derived
    /// [`SweepPolicy`] (unlimited failure tolerance).
    pub fn run_each(self) -> PlanOutcomes {
        self.run_sweep(SweepPolicy::from_env()).into_outcomes()
    }

    /// The crash-safe sweep entry point: executes every cell under
    /// supervision (see the module docs), tolerating up to
    /// `policy.max_failures` permanent cell failures — survivors
    /// complete, cells past the budget are skipped without running
    /// ([`SimError::Skipped`]) — and reports every failure with its
    /// config digest and autosaved repro-bundle path.
    ///
    /// With more than one worker, *which* cells land past the budget
    /// depends on completion timing; pin the plan to one thread
    /// ([`Plan::with_threads`]) when a test needs the skip set to be
    /// deterministic. Everything else — results, failures, backoff
    /// delays — is deterministic at any worker count.
    pub fn run_sweep(self, policy: SweepPolicy) -> SweepReport {
        let sweep_started = Instant::now();
        let threads = self.threads.unwrap_or_else(worker_threads);
        let origin = process_origin();
        let store_handle = self.resolve_store();
        let status_dir = self.resolve_status_dir();
        let sweep_name = self.name.clone().unwrap_or_else(|| "sweep".to_string());
        let keys: Vec<String> = self.cells.iter().map(|(_, c)| fingerprint(c)).collect();

        // Distinct configurations not already memoized become jobs —
        // after a detour through the persistent store, which turns a
        // relaunched sweep's would-be jobs back into hits. Each cell's
        // resolution is classified on the way for the status board:
        // served from cache (ok or failure), or produced by job `j`.
        enum CellSource {
            CachedOk,
            CachedFailed,
            Job(usize),
        }
        let mut sources: Vec<CellSource> = Vec::with_capacity(self.cells.len());
        let mut jobs: Vec<(String, String, RunConfig)> = Vec::new();
        {
            let mut m = memo().lock().expect("memo lock");
            let mut queued: HashMap<&str, usize> = HashMap::new();
            for ((label, cfg), key) in self.cells.iter().zip(&keys) {
                if m.results.contains_key(key.as_str()) {
                    sources.push(CellSource::CachedOk);
                    continue;
                }
                if m.failures.contains_key(key.as_str()) {
                    sources.push(CellSource::CachedFailed);
                    continue;
                }
                if let Some(&j) = queued.get(key.as_str()) {
                    sources.push(CellSource::Job(j));
                    continue;
                }
                if let Some(store) = &store_handle {
                    match store.get(key) {
                        Some(StoredOutcome::Result(result)) => {
                            m.results.insert(key.clone(), *result);
                            sources.push(CellSource::CachedOk);
                            continue;
                        }
                        Some(StoredOutcome::Failure(error)) => {
                            m.failures.insert(key.clone(), FailureEntry::new(error));
                            sources.push(CellSource::CachedFailed);
                            continue;
                        }
                        None => {}
                    }
                }
                queued.insert(key.as_str(), jobs.len());
                sources.push(CellSource::Job(jobs.len()));
                jobs.push((key.clone(), label.clone(), cfg.clone()));
            }
        }

        // Live status (`SEESAW_STATUS`): cached cells resolve on the
        // board instantly; each job updates every plan cell it serves
        // (duplicates share one simulation, hence one heartbeat).
        let job_cells: Vec<Vec<usize>> = {
            let mut v = vec![Vec::new(); jobs.len()];
            for (i, s) in sources.iter().enumerate() {
                if let CellSource::Job(j) = s {
                    v[*j].push(i);
                }
            }
            v
        };
        let board_writer: Option<(Arc<StatusBoard>, StatusWriter)> = status_dir.and_then(|dir| {
            let meta: Vec<(String, String)> = self
                .cells
                .iter()
                .zip(&keys)
                .map(|((label, _), key)| (label.clone(), store::digest(key)[..8].to_string()))
                .collect();
            let board = StatusBoard::new(&sweep_name, &meta, threads);
            for (i, s) in sources.iter().enumerate() {
                match s {
                    CellSource::CachedOk => board.cached(i, false),
                    CellSource::CachedFailed => board.cached(i, true),
                    CellSource::Job(_) => {}
                }
            }
            match StatusWriter::spawn(board.clone(), &dir, status::status_interval_from_env()) {
                Ok(writer) => Some((board, writer)),
                Err(e) => {
                    // Live status is best-effort; the sweep is not.
                    eprintln!("[status] disabled: cannot write {}: {e}", dir.display());
                    None
                }
            }
        });

        // Like `parallel_map_with`, but each worker runs its jobs under
        // the supervisor, honors the sweep's failure budget, and stamps
        // its outputs with its own index and the job's wall-clock span,
        // so the plan journal can reconstruct the schedule.
        type JobOutcome = (Result<RunResult, SimError>, usize, u64, u64);
        let workers = threads.clamp(1, jobs.len().max(1));
        let next = AtomicUsize::new(0);
        let permanent = AtomicUsize::new(0);
        let tally = SupervisorTally::default();
        let slots: Vec<Mutex<Option<JobOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                let permanent = &permanent;
                let tally = &tally;
                let slots = &slots;
                let jobs = &jobs;
                let store_handle = &store_handle;
                let sup = &policy.supervisor;
                let board_writer = &board_writer;
                let job_cells = &job_cells;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (key, label, cfg) = &jobs[i];
                    let status = board_writer
                        .as_ref()
                        .map(|(board, _)| (board.as_ref(), job_cells[i].as_slice()));
                    let start_us = origin.elapsed().as_micros() as u64;
                    let budget_spent = policy
                        .max_failures
                        .is_some_and(|n| permanent.load(Ordering::Relaxed) > n);
                    let outcome = if budget_spent {
                        tally.cells_skipped.fetch_add(1, Ordering::Relaxed);
                        if let Some((board, cells)) = status {
                            board.finish(cells, CellState::Skipped);
                        }
                        Err(SimError::Skipped {
                            cell: label.clone(),
                        })
                    } else {
                        let out = run_supervised(
                            label,
                            key,
                            cfg,
                            sup,
                            store_handle.as_ref(),
                            tally,
                            status,
                        );
                        if out.as_ref().is_err() {
                            tally.permanent_failures.fetch_add(1, Ordering::Relaxed);
                            permanent.fetch_add(1, Ordering::Relaxed);
                        }
                        out
                    };
                    let dur_us =
                        (origin.elapsed().as_micros() as u64).saturating_sub(start_us).max(1);
                    *slots[i].lock().expect("slot lock") =
                        Some((outcome, w, start_us, dur_us));
                });
            }
        });
        let job_outcomes: Vec<JobOutcome> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot lock")
                    .expect("every slot filled by a worker")
            })
            .collect();

        let memo_delta = MemoStats {
            hits: (keys.len() - jobs.len()) as u64,
            misses: jobs.len() as u64,
            entries: {
                let mut distinct: HashSet<&str> = HashSet::new();
                keys.iter().for_each(|k| {
                    distinct.insert(k);
                });
                distinct.len()
            },
        };

        // Memoize fresh outcomes. Harness-level failures (panic,
        // timeout, skip) are circumstances of this execution, not
        // properties of the configuration, so they stay local — a later
        // plan (or a relaunch) retries those cells.
        let mut local: HashMap<String, Result<RunResult, SimError>> = HashMap::new();
        let mut spans: HashMap<String, (usize, u64, u64)> = HashMap::new();
        {
            let mut m = memo().lock().expect("memo lock");
            m.misses += jobs.len() as u64;
            m.hits += (keys.len() - jobs.len()) as u64;
            for ((key, _, _), (outcome, worker, start_us, dur_us)) in
                jobs.into_iter().zip(job_outcomes)
            {
                spans.insert(key.clone(), (worker, start_us, dur_us));
                match &outcome {
                    Ok(result) => {
                        m.results.insert(key.clone(), result.clone());
                    }
                    Err(
                        e @ (SimError::Check(_)
                        | SimError::Mem { .. }
                        | SimError::PageFault { .. }),
                    ) => {
                        m.failures
                            .insert(key.clone(), FailureEntry::new(e.clone()));
                    }
                    Err(SimError::Panic { .. } | SimError::Timeout { .. } | SimError::Skipped { .. }) => {}
                }
                local.insert(key, outcome);
            }
        }

        // Per-cell journal in plan order: cells whose config was freshly
        // simulated carry that job's span; the rest are memo hits served
        // at assembly time.
        let journal: Vec<CellRecord> = {
            let mut seen: HashSet<&str> = HashSet::new();
            self.cells
                .iter()
                .zip(&keys)
                .map(|((label, _), key)| match spans.get(key.as_str()) {
                    Some(&(worker, start_us, dur_us)) if seen.insert(key) => CellRecord {
                        label: label.clone(),
                        worker,
                        start_us,
                        dur_us,
                        memo_hit: false,
                    },
                    _ => CellRecord {
                        label: label.clone(),
                        worker: 0,
                        start_us: origin.elapsed().as_micros() as u64,
                        dur_us: 0,
                        memo_hit: true,
                    },
                })
                .collect()
        };

        session()
            .lock()
            .expect("session lock")
            .extend(journal.iter().cloned());

        // Assemble plan-order outcomes and the failure summary.
        let mut outcomes: Vec<Result<RunResult, SimError>> = Vec::with_capacity(keys.len());
        let mut failed: Vec<FailedCell> = Vec::new();
        {
            let m = memo().lock().expect("memo lock");
            for (i, ((label, _), key)) in self.cells.iter().zip(&keys).enumerate() {
                let outcome = match local.get(key.as_str()) {
                    Some(o) => o.clone(),
                    None => match m.results.get(key.as_str()) {
                        Some(r) => Ok(r.clone()),
                        None => Err(m.failures[key.as_str()].error.clone()),
                    },
                };
                if let Err(error) = &outcome {
                    let bundle_path = m
                        .failures
                        .get(key.as_str())
                        .and_then(|f| f.bundle_path.clone())
                        .or_else(|| error.bundle_path().map(|p| p.to_path_buf()));
                    failed.push(FailedCell {
                        index: i,
                        label: label.clone(),
                        fingerprint: store::digest(key),
                        bundle_path,
                        error: error.clone(),
                    });
                }
                outcomes.push(outcome);
            }
        }

        let supervisor = tally.snapshot();
        fold_supervisor_totals(supervisor);

        // Terminal ops rollup — computed from the outcomes whether or
        // not a status board was live, so `SweepReport::metrics` always
        // carries `ops.sweep.*`. Instructions count the fresh
        // simulations' measured windows; the rate is over this sweep's
        // own wall clock.
        let ops = {
            let mut ops = OpsSweepStats {
                cells: keys.len() as u64,
                cached: memo_delta.hits,
                ..OpsSweepStats::default()
            };
            for outcome in &outcomes {
                match outcome {
                    Ok(_) => ops.done += 1,
                    Err(SimError::Skipped { .. }) => ops.skipped += 1,
                    Err(_) => ops.failed += 1,
                }
            }
            ops.instructions = local
                .values()
                .filter_map(|o| o.as_ref().ok())
                .map(|r| r.totals.instructions)
                .sum();
            let wall = sweep_started.elapsed().as_secs_f64();
            if wall > 0.0 {
                ops.minstr_per_sec = ops.instructions as f64 / wall / 1e6;
            }
            ops
        };
        fold_session_ops(&ops);

        let store_stats = store_handle.map(|s| s.stats());
        if let Some((board, writer)) = board_writer {
            board.set_rollup(supervisor, store_stats);
            board.mark_done();
            writer.finish();
        }

        SweepReport {
            outcomes,
            failed,
            memo: memo_delta,
            journal,
            threads,
            supervisor,
            store: store_stats,
            ops,
        }
    }
}

/// The outcome of [`Plan::run_each`]: one `Result` per cell, in plan
/// order, plus the same memo deltas and journal as [`PlanRun`].
#[derive(Debug)]
pub struct PlanOutcomes {
    /// Per-cell outcomes in plan order.
    pub outcomes: Vec<Result<RunResult, SimError>>,
    /// Memo traffic attributable to this plan alone.
    pub memo: MemoStats,
    /// Per-cell schedule, in plan order.
    pub journal: Vec<CellRecord>,
    /// Worker threads the plan ran with.
    pub threads: usize,
}

/// One failed cell in a [`SweepReport`].
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// The cell's index in plan order.
    pub index: usize,
    /// The label the driver pushed the cell with.
    pub label: String,
    /// The 128-bit content digest of the cell's configuration
    /// fingerprint — the persistent store's record name, so the failing
    /// config can be located without replaying the plan.
    pub fingerprint: String,
    /// Where the autosaved repro bundle lives (checker violations under
    /// `SEESAW_REPRO` only).
    pub bundle_path: Option<PathBuf>,
    /// The failure itself.
    pub error: SimError,
}

/// The outcome of [`Plan::run_sweep`]: per-cell outcomes plus the
/// sweep's failure summary, supervision tally, and store traffic.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-cell outcomes in plan order.
    pub outcomes: Vec<Result<RunResult, SimError>>,
    /// Every cell whose outcome is an error, in plan order (skipped
    /// cells included, distinguishable by [`SimError::Skipped`]).
    pub failed: Vec<FailedCell>,
    /// Memo traffic attributable to this plan alone.
    pub memo: MemoStats,
    /// Per-cell schedule, in plan order.
    pub journal: Vec<CellRecord>,
    /// Worker threads the plan ran with.
    pub threads: usize,
    /// This plan's supervision tally.
    pub supervisor: SupervisorStats,
    /// The consulted store's cumulative traffic counters (`None` when
    /// the plan ran without persistence).
    pub store: Option<StoreStats>,
    /// Terminal operations rollup (cell state counts, fresh-simulation
    /// instructions, and this sweep's throughput) — the same numbers the
    /// final live `status.json` snapshot reports.
    pub ops: OpsSweepStats,
}

impl SweepReport {
    /// True when every cell completed.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }

    /// Cells skipped because the failure budget was exhausted.
    pub fn skipped(&self) -> impl Iterator<Item = &FailedCell> {
        self.failed
            .iter()
            .filter(|f| matches!(f.error, SimError::Skipped { .. }))
    }

    /// Drops the sweep-specific summary, keeping the per-cell outcomes
    /// (the [`Plan::run_each`] return shape).
    pub fn into_outcomes(self) -> PlanOutcomes {
        let SweepReport {
            outcomes,
            failed: _,
            memo,
            journal,
            threads,
            supervisor: _,
            store: _,
            ops: _,
        } = self;
        PlanOutcomes {
            outcomes,
            memo,
            journal,
            threads,
        }
    }

    /// The sweep-level counters as a metrics registry — `memo.*` and
    /// `supervisor.*` always, `store.*` when a persistent store was
    /// active — so harness health exports through the same telemetry
    /// surface as simulation results.
    pub fn metrics(&self) -> seesaw_trace::MetricsRegistry {
        use seesaw_trace::Collect;
        let mut m = seesaw_trace::MetricsRegistry::new();
        self.memo.collect("memo", &mut m);
        self.supervisor.collect("supervisor", &mut m);
        if let Some(s) = &self.store {
            s.collect("store", &mut m);
        }
        self.ops.collect("ops.sweep", &mut m);
        // Wall-clock distribution of the freshly simulated cells (memo
        // hits are excluded — they resolve in microseconds and would
        // drown the signal).
        let mut wall_ms = Log2Histogram::new();
        for cell in self.journal.iter().filter(|c| !c.memo_hit) {
            wall_ms.record(cell.dur_us / 1000);
        }
        wall_ms.collect("ops.cell.wall_ms", &mut m);
        m
    }

    /// A human-readable failure summary, one line per failed cell (empty
    /// string when all cells completed) — what the sweep binaries print
    /// before exiting nonzero.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for f in &self.failed {
            out.push_str(&format!(
                "cell {} ({}, config {}): {}",
                f.index,
                f.label,
                &f.fingerprint[..8.min(f.fingerprint.len())],
                f.error
            ));
            if let Some(p) = &f.bundle_path {
                out.push_str(&format!(" [repro: {}]", p.display()));
            }
            out.push('\n');
        }
        out
    }
}

/// One cell's entry in a [`PlanRun`] journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The label the driver pushed the cell with.
    pub label: String,
    /// Index of the worker thread that simulated it (0 for memo hits).
    pub worker: usize,
    /// Microseconds after [`Plan::run`] began when simulation started
    /// (for memo hits: when the cached result was served).
    pub start_us: u64,
    /// Wall-clock microseconds the simulation took (0 for memo hits).
    pub dur_us: u64,
    /// True when the cell was served from the process-wide memo cache
    /// instead of being simulated by this plan.
    pub memo_hit: bool,
}

/// The outcome of [`Plan::run`]: results in plan order, this plan's
/// memo-cache deltas, and a per-cell wall-clock journal.
///
/// Indexes like the `Vec<RunResult>` it used to be, so drivers keep
/// writing `results[cell]`.
#[derive(Debug, Clone)]
pub struct PlanRun {
    results: Vec<RunResult>,
    /// Memo traffic attributable to this plan alone: `hits` cells served
    /// from cache, `misses` freshly simulated, `entries` distinct
    /// configurations in the plan (contrast with the process-wide
    /// [`memo_stats`]).
    pub memo: MemoStats,
    /// Per-cell schedule, in plan order.
    pub journal: Vec<CellRecord>,
    /// Worker threads the plan ran with.
    pub threads: usize,
}

impl PlanRun {
    /// Number of results (one per pushed cell).
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when the plan had no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Iterates the results in plan order.
    pub fn iter(&self) -> std::slice::Iter<'_, RunResult> {
        self.results.iter()
    }

    /// The results in plan order, as a slice.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Renders the plan's schedule as a Chrome `trace_event` document
    /// (loadable in `chrome://tracing` or Perfetto): one track per worker
    /// thread, one complete span per freshly simulated cell, and one
    /// instant event per memo hit on a dedicated track.
    pub fn chrome_trace(&self, plan_name: &str) -> String {
        chrome_trace_of(plan_name, &self.journal)
    }
}

impl std::ops::Index<usize> for PlanRun {
    type Output = RunResult;

    fn index(&self, i: usize) -> &RunResult {
        &self.results[i]
    }
}

impl<'a> IntoIterator for &'a PlanRun {
    type Item = &'a RunResult;
    type IntoIter = std::slice::Iter<'a, RunResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.iter()
    }
}

impl IntoIterator for PlanRun {
    type Item = RunResult;
    type IntoIter = std::vec::IntoIter<RunResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L1DesignKind;

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = RunConfig::quick("redis");
        let b = RunConfig::quick("redis").design(L1DesignKind::Seesaw);
        let c = RunConfig::quick("redis").memhog(10);
        assert_eq!(fingerprint(&a), fingerprint(&RunConfig::quick("redis")));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_with(4, &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_plan_runs() {
        assert!(Plan::new().run().unwrap().is_empty());
        assert!(Plan::new().is_empty());
    }

    #[test]
    fn duplicate_cells_simulate_once() {
        let cfg = RunConfig::quick("astar").instructions(40_000);
        let mut plan = Plan::with_threads(2);
        let a = plan.push("first", cfg.clone());
        let b = plan.push("second", cfg.clone());
        let before = memo_stats();
        let results = plan.run().unwrap();
        let after = memo_stats();
        assert_eq!(results[a].totals.cycles, results[b].totals.cycles);
        // At most one fresh simulation for the pair; the sibling cell is
        // a hit (the config itself may already be cached process-wide).
        assert!(after.misses - before.misses <= 1);
        assert!(after.hits - before.hits >= 1);
    }

    #[test]
    fn plan_reports_memo_deltas_and_journal() {
        let cfg = RunConfig::quick("tunk").instructions(30_000);
        let mut plan = Plan::with_threads(2);
        plan.push("one", cfg.clone());
        plan.push("two", cfg.clone());
        let run = plan.run().unwrap();
        // Per-plan deltas: two cells, one distinct config, so at least
        // one cell was a memo hit regardless of process-wide state.
        assert_eq!(run.memo.hits + run.memo.misses, 2);
        assert_eq!(run.memo.entries, 1);
        assert!(run.memo.hits >= 1);
        assert_eq!(run.journal.len(), 2);
        assert_eq!(run.journal[0].label, "one");
        assert!(run.journal[1].memo_hit, "duplicate cell must be a hit");
        let fresh = run.journal.iter().filter(|c| !c.memo_hit).count();
        assert_eq!(fresh as u64, run.memo.misses);
        assert!(run.journal.iter().filter(|c| !c.memo_hit).all(|c| c.dur_us > 0));
    }

    #[test]
    fn plan_chrome_trace_is_valid_json() {
        let cfg = RunConfig::quick("tunk").instructions(30_000);
        let mut plan = Plan::with_threads(2);
        plan.push("cell a", cfg.clone());
        plan.push("cell a again", cfg);
        let run = plan.run().unwrap();
        let doc = seesaw_trace::json::Json::parse(&run.chrome_trace("test plan"))
            .expect("chrome trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(seesaw_trace::json::Json::as_array)
            .expect("traceEvents array");
        // Metadata + at least one record per journal cell.
        assert!(events.len() >= run.journal.len());
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(seesaw_trace::json::Json::as_str) == Some("i")
        }));
    }

    #[test]
    fn run_each_returns_per_cell_outcomes_and_memoizes_failures() {
        let chaos = seesaw_check::ChaosConfig {
            drop_tft_invalidation_on_splinter: true,
            ..Default::default()
        };
        let bad = RunConfig::quick("redis")
            .design(L1DesignKind::Seesaw)
            .with_checker()
            .with_faults(
                seesaw_check::FaultConfig::all(0xfa17_5eed)
                    .mean_interval(2_000)
                    .chaos(chaos),
            );
        let good = RunConfig::quick("astar").instructions(30_000);
        let mut plan = Plan::with_threads(2);
        plan.push("bad", bad.clone());
        plan.push("good", good);
        let out = plan.run_each();
        assert!(matches!(out.outcomes[0], Err(SimError::Check(_))));
        assert!(out.outcomes[1].is_ok());
        assert_eq!(out.journal.len(), 2);

        // The failure is memoized: a second plan serves it from cache.
        let before = memo_stats();
        let mut plan = Plan::with_threads(2);
        plan.push("bad again", bad.clone());
        let again = plan.run_each();
        let after = memo_stats();
        assert!(matches!(again.outcomes[0], Err(SimError::Check(_))));
        assert_eq!(after.misses, before.misses, "cached failure re-simulated");

        // `run()` surfaces the same error for the earliest failing cell.
        let mut plan = Plan::with_threads(2);
        plan.push("bad once more", bad);
        assert!(matches!(plan.run(), Err(SimError::Check(_))));
    }

    #[test]
    fn run_sweep_reports_failed_cells_with_digests() {
        let chaos = seesaw_check::ChaosConfig {
            drop_tft_invalidation_on_splinter: true,
            ..Default::default()
        };
        let bad = RunConfig::quick("redis")
            .design(L1DesignKind::Seesaw)
            .with_checker()
            .with_faults(
                seesaw_check::FaultConfig::all(0xfa17_5eed)
                    .mean_interval(2_000)
                    .chaos(chaos),
            );
        let good = RunConfig::quick("astar").instructions(35_000);
        let mut plan = Plan::with_threads(2);
        plan.push("violates", bad.clone());
        plan.push("fine", good);
        let report = plan.run_sweep(SweepPolicy::from_env());
        assert!(!report.all_ok());
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!(f.index, 0);
        assert_eq!(f.label, "violates");
        assert_eq!(f.fingerprint, store::digest(&fingerprint(&bad)));
        assert!(matches!(f.error, SimError::Check(_)));
        assert!(report.outcomes[1].is_ok());
        assert!(report.summary().contains("violates"));
        assert_eq!(report.skipped().count(), 0);
    }

    #[test]
    fn plan_matches_serial_execution() {
        let configs = [
            RunConfig::quick("astar").instructions(40_000),
            RunConfig::quick("astar")
                .instructions(40_000)
                .design(L1DesignKind::Seesaw),
        ];
        let mut plan = Plan::with_threads(2);
        for (i, cfg) in configs.iter().enumerate() {
            plan.push(format!("cell{i}"), cfg.clone());
        }
        let parallel = plan.run().unwrap();
        for (cfg, got) in configs.iter().zip(&parallel) {
            let serial = System::build(cfg).unwrap().run().unwrap();
            assert_eq!(serial.totals.cycles, got.totals.cycles);
            assert_eq!(serial.l1.misses, got.l1.misses);
            assert_eq!(
                serial.energy.total_nj().to_bits(),
                got.energy.total_nj().to_bits()
            );
        }
    }
}
