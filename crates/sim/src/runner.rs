//! Deterministic parallel experiment engine with memoized runs.
//!
//! The paper's evaluation is a large grid of *independent* simulations:
//! every figure and table sweeps workloads × designs × knobs, and many
//! cells (most prominently the baseline-VIPT runs every comparison
//! divides by) recur across sweeps. This module gives every driver the
//! same two-layer engine:
//!
//! * **A scoped worker pool.** [`Plan`] collects `(label, RunConfig)`
//!   cells and [`Plan::run`] executes them across `std::thread::scope`
//!   workers (no external dependencies — see the rand/proptest/criterion
//!   path shims for why the workspace builds offline). Results come back
//!   in plan order, and because every run is seeded purely by its own
//!   [`RunConfig`], the parallel output is bit-identical to executing the
//!   same plan serially.
//! * **A content-addressed memo cache.** Each config is fingerprinted
//!   (its full `Debug` rendering — every field participates, so two
//!   configs collide only when they are equal) and finished
//!   [`RunResult`]s are kept in a process-wide table. A config that
//!   recurs — across cells of one plan, across plans, across figures in
//!   one binary, or across `cargo test` threads — is simulated once per
//!   process and served from the cache afterwards. Determinism makes
//!   this sound: a memoized result is the result a fresh run would
//!   produce.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `SEESAW_THREADS` environment variable (used by
//! `scripts/check.sh` and `scripts/bench.sh`).
//!
//! # Example
//!
//! ```
//! use seesaw_sim::{runner::Plan, L1DesignKind, RunConfig};
//!
//! let mut plan = Plan::new();
//! let base = plan.push("base", RunConfig::quick("redis"));
//! let seesaw = plan.push("seesaw", RunConfig::quick("redis").design(L1DesignKind::Seesaw));
//! let results = plan.run().unwrap();
//! assert!(results[seesaw].runtime_improvement_pct(&results[base]) > 0.0);
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use seesaw_trace::{ChromeTrace, Collect, MetricsRegistry};

use crate::{RunConfig, RunResult, SimError, System};

/// Process-wide memo cache state. Failures are memoized alongside
/// results: runs are deterministic, so a config that failed once fails
/// identically forever, and the repro shrinker leans on this — most of
/// its delta-debugging candidates *fail by construction* and recur across
/// bisection rounds.
struct MemoState {
    results: HashMap<String, RunResult>,
    failures: HashMap<String, SimError>,
    hits: u64,
    misses: u64,
}

static MEMO: OnceLock<Mutex<MemoState>> = OnceLock::new();

fn memo() -> &'static Mutex<MemoState> {
    MEMO.get_or_init(|| {
        Mutex::new(MemoState {
            results: HashMap::new(),
            failures: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// A snapshot of the process-wide memo cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Plan cells served from the cache (including duplicates inside one
    /// plan, which are simulated once).
    pub hits: u64,
    /// Plan cells that required a fresh simulation.
    pub misses: u64,
    /// Distinct configurations currently cached.
    pub entries: usize,
}

/// The process-wide wall-clock origin every plan journal is stamped
/// against, so spans from successive plans in one binary land on one
/// consistent Chrome-trace timeline.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

fn process_origin() -> Instant {
    *ORIGIN.get_or_init(Instant::now)
}

/// Every cell journaled by every [`Plan::run`] in this process, in
/// completion order of the plans.
static SESSION: OnceLock<Mutex<Vec<CellRecord>>> = OnceLock::new();

fn session() -> &'static Mutex<Vec<CellRecord>> {
    SESSION.get_or_init(|| Mutex::new(Vec::new()))
}

/// A copy of the process-wide plan journal: one [`CellRecord`] per cell
/// of every plan run so far, stamped against one shared origin.
pub fn session_journal() -> Vec<CellRecord> {
    session().lock().expect("session lock").clone()
}

/// Renders the process-wide plan journal as a Chrome `trace_event`
/// document (see [`PlanRun::chrome_trace`] for the per-plan variant).
pub fn session_chrome_trace(name: &str) -> String {
    chrome_trace_of(name, &session_journal())
}

/// Shared Chrome-trace renderer: one track per worker, complete spans
/// for fresh simulations, instant events for memo hits.
fn chrome_trace_of(plan_name: &str, journal: &[CellRecord]) -> String {
    let mut t = ChromeTrace::new();
    t.process_name(1, plan_name);
    t.thread_name(1, 0, "memo cache");
    let mut workers: Vec<usize> = journal
        .iter()
        .filter(|c| !c.memo_hit)
        .map(|c| c.worker)
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        t.thread_name(1, w as u64 + 1, &format!("worker {w}"));
    }
    for cell in journal {
        if cell.memo_hit {
            t.instant(&cell.label, "memo", 1, 0, cell.start_us, &[("memo", "hit")]);
        } else {
            t.complete(
                &cell.label,
                "cell",
                1,
                cell.worker as u64 + 1,
                cell.start_us,
                cell.dur_us,
                &[("memo", "miss")],
            );
        }
    }
    t.render()
}

impl Collect for MemoStats {
    fn collect(&self, prefix: &str, out: &mut MetricsRegistry) {
        let MemoStats {
            hits,
            misses,
            entries,
        } = *self;
        out.set_u64(&format!("{prefix}.hits"), hits);
        out.set_u64(&format!("{prefix}.misses"), misses);
        out.set_u64(&format!("{prefix}.entries"), entries as u64);
    }
}

/// Returns the memo-cache counters accumulated so far in this process.
pub fn memo_stats() -> MemoStats {
    let m = memo().lock().expect("memo lock");
    MemoStats {
        hits: m.hits,
        misses: m.misses,
        entries: m.results.len(),
    }
}

/// The content address of a configuration: its complete `Debug`
/// rendering. Every `RunConfig` field derives `Debug`, so the fingerprint
/// changes whenever any knob changes and two fingerprints are equal only
/// for equal configs — no hand-maintained hash to fall out of sync.
pub fn fingerprint(config: &RunConfig) -> String {
    format!("{config:?}")
}

/// The worker count: `SEESAW_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn worker_threads() -> usize {
    match std::env::var("SEESAW_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// An ordered parallel map: applies `f` to every item across the worker
/// pool and returns the outputs in input order. Used directly by drivers
/// whose unit of work is not a full [`RunConfig`] simulation (e.g. the
/// Fig. 2a functional cache sweep) and by [`Plan::run`] underneath.
pub fn parallel_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    parallel_map_with(worker_threads(), items, f)
}

fn parallel_map_with<T, R>(threads: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// An ordered grid of labelled simulation cells.
///
/// Drivers push one cell per `System::build(..)?.run()?` they need,
/// remember the returned indices, call [`Plan::run`] once, and assemble
/// their rows from the ordered results. See the module docs for the
/// execution and memoization model.
#[derive(Debug, Default)]
pub struct Plan {
    cells: Vec<(String, RunConfig)>,
    threads: Option<usize>,
}

impl Plan {
    /// An empty plan using the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plan pinned to `threads` workers (tests use this to
    /// exercise the parallel path regardless of the host's core count).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            cells: Vec::new(),
            threads: Some(threads.max(1)),
        }
    }

    /// Appends a cell and returns its index into [`Plan::run`]'s output.
    pub fn push(&mut self, label: impl Into<String>, config: RunConfig) -> usize {
        self.cells.push((label.into(), config));
        self.cells.len() - 1
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Executes every cell — distinct configurations in parallel, each
    /// simulated at most once per process — and returns the results in
    /// plan order, along with this plan's memo-cache deltas and a
    /// wall-clock journal of which worker simulated which cell when.
    ///
    /// # Errors
    /// Returns the error of the earliest cell (in plan order) whose
    /// simulation failed — the same error a serial front-to-back
    /// execution of the plan would have surfaced first.
    pub fn run(self) -> Result<PlanRun, SimError> {
        let PlanOutcomes {
            outcomes,
            memo,
            journal,
            threads,
        } = self.run_each();
        let mut results = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            results.push(outcome?);
        }
        Ok(PlanRun {
            results,
            memo,
            journal,
            threads,
        })
    }

    /// Like [`Plan::run`], but a failing cell does not abort the plan:
    /// every cell's outcome comes back in plan order as its own
    /// `Result`. This is the entry point for callers that *expect*
    /// failures — the repro shrinker probes dozens of configurations per
    /// round precisely to learn which ones still violate the checker.
    pub fn run_each(self) -> PlanOutcomes {
        let threads = self.threads.unwrap_or_else(worker_threads);
        let origin = process_origin();
        let keys: Vec<String> = self.cells.iter().map(|(_, c)| fingerprint(c)).collect();

        // Distinct configurations not already memoized become jobs.
        let mut jobs: Vec<(String, RunConfig)> = Vec::new();
        {
            let m = memo().lock().expect("memo lock");
            let mut queued: HashSet<&str> = HashSet::new();
            for ((_, cfg), key) in self.cells.iter().zip(&keys) {
                if !m.results.contains_key(key.as_str())
                    && !m.failures.contains_key(key.as_str())
                    && queued.insert(key)
                {
                    jobs.push((key.clone(), cfg.clone()));
                }
            }
        }

        // Like `parallel_map_with`, but each worker stamps its outputs
        // with its own index and the job's wall-clock span, so the plan
        // journal can reconstruct the schedule for the Chrome trace.
        type JobOutcome = (Result<RunResult, SimError>, usize, u64, u64);
        let workers = threads.clamp(1, jobs.len().max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                let slots = &slots;
                let jobs = &jobs;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let start_us = origin.elapsed().as_micros() as u64;
                    let outcome = System::build(&jobs[i].1).and_then(System::run);
                    let dur_us =
                        (origin.elapsed().as_micros() as u64).saturating_sub(start_us).max(1);
                    *slots[i].lock().expect("slot lock") =
                        Some((outcome, w, start_us, dur_us));
                });
            }
        });
        let outcomes: Vec<JobOutcome> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot lock")
                    .expect("every slot filled by a worker")
            })
            .collect();

        let memo_delta = MemoStats {
            hits: (keys.len() - jobs.len()) as u64,
            misses: jobs.len() as u64,
            entries: {
                let mut distinct: HashSet<&str> = HashSet::new();
                keys.iter().for_each(|k| {
                    distinct.insert(k);
                });
                distinct.len()
            },
        };

        let mut spans: HashMap<String, (usize, u64, u64)> = HashMap::new();
        {
            let mut m = memo().lock().expect("memo lock");
            m.misses += jobs.len() as u64;
            m.hits += (keys.len() - jobs.len()) as u64;
            for ((key, _), (outcome, worker, start_us, dur_us)) in
                jobs.into_iter().zip(outcomes)
            {
                spans.insert(key.clone(), (worker, start_us, dur_us));
                match outcome {
                    Ok(result) => {
                        m.results.insert(key, result);
                    }
                    Err(e) => {
                        m.failures.insert(key, e);
                    }
                }
            }
        }

        // Per-cell journal in plan order: cells whose config was freshly
        // simulated carry that job's span; the rest are memo hits served
        // at assembly time.
        let journal: Vec<CellRecord> = {
            let mut seen: HashSet<&str> = HashSet::new();
            self.cells
                .iter()
                .zip(&keys)
                .map(|((label, _), key)| match spans.get(key.as_str()) {
                    Some(&(worker, start_us, dur_us)) if seen.insert(key) => CellRecord {
                        label: label.clone(),
                        worker,
                        start_us,
                        dur_us,
                        memo_hit: false,
                    },
                    _ => CellRecord {
                        label: label.clone(),
                        worker: 0,
                        start_us: origin.elapsed().as_micros() as u64,
                        dur_us: 0,
                        memo_hit: true,
                    },
                })
                .collect()
        };

        session()
            .lock()
            .expect("session lock")
            .extend(journal.iter().cloned());

        let m = memo().lock().expect("memo lock");
        let outcomes = keys
            .iter()
            .map(|k| match m.results.get(k.as_str()) {
                Some(r) => Ok(r.clone()),
                None => Err(m.failures[k.as_str()].clone()),
            })
            .collect();
        PlanOutcomes {
            outcomes,
            memo: memo_delta,
            journal,
            threads,
        }
    }
}

/// The outcome of [`Plan::run_each`]: one `Result` per cell, in plan
/// order, plus the same memo deltas and journal as [`PlanRun`].
#[derive(Debug)]
pub struct PlanOutcomes {
    /// Per-cell outcomes in plan order.
    pub outcomes: Vec<Result<RunResult, SimError>>,
    /// Memo traffic attributable to this plan alone.
    pub memo: MemoStats,
    /// Per-cell schedule, in plan order.
    pub journal: Vec<CellRecord>,
    /// Worker threads the plan ran with.
    pub threads: usize,
}

/// One cell's entry in a [`PlanRun`] journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The label the driver pushed the cell with.
    pub label: String,
    /// Index of the worker thread that simulated it (0 for memo hits).
    pub worker: usize,
    /// Microseconds after [`Plan::run`] began when simulation started
    /// (for memo hits: when the cached result was served).
    pub start_us: u64,
    /// Wall-clock microseconds the simulation took (0 for memo hits).
    pub dur_us: u64,
    /// True when the cell was served from the process-wide memo cache
    /// instead of being simulated by this plan.
    pub memo_hit: bool,
}

/// The outcome of [`Plan::run`]: results in plan order, this plan's
/// memo-cache deltas, and a per-cell wall-clock journal.
///
/// Indexes like the `Vec<RunResult>` it used to be, so drivers keep
/// writing `results[cell]`.
#[derive(Debug, Clone)]
pub struct PlanRun {
    results: Vec<RunResult>,
    /// Memo traffic attributable to this plan alone: `hits` cells served
    /// from cache, `misses` freshly simulated, `entries` distinct
    /// configurations in the plan (contrast with the process-wide
    /// [`memo_stats`]).
    pub memo: MemoStats,
    /// Per-cell schedule, in plan order.
    pub journal: Vec<CellRecord>,
    /// Worker threads the plan ran with.
    pub threads: usize,
}

impl PlanRun {
    /// Number of results (one per pushed cell).
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when the plan had no cells.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Iterates the results in plan order.
    pub fn iter(&self) -> std::slice::Iter<'_, RunResult> {
        self.results.iter()
    }

    /// The results in plan order, as a slice.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Renders the plan's schedule as a Chrome `trace_event` document
    /// (loadable in `chrome://tracing` or Perfetto): one track per worker
    /// thread, one complete span per freshly simulated cell, and one
    /// instant event per memo hit on a dedicated track.
    pub fn chrome_trace(&self, plan_name: &str) -> String {
        chrome_trace_of(plan_name, &self.journal)
    }
}

impl std::ops::Index<usize> for PlanRun {
    type Output = RunResult;

    fn index(&self, i: usize) -> &RunResult {
        &self.results[i]
    }
}

impl<'a> IntoIterator for &'a PlanRun {
    type Item = &'a RunResult;
    type IntoIter = std::slice::Iter<'a, RunResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.iter()
    }
}

impl IntoIterator for PlanRun {
    type Item = RunResult;
    type IntoIter = std::vec::IntoIter<RunResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L1DesignKind;

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = RunConfig::quick("redis");
        let b = RunConfig::quick("redis").design(L1DesignKind::Seesaw);
        let c = RunConfig::quick("redis").memhog(10);
        assert_eq!(fingerprint(&a), fingerprint(&RunConfig::quick("redis")));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_with(4, &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_plan_runs() {
        assert!(Plan::new().run().unwrap().is_empty());
        assert!(Plan::new().is_empty());
    }

    #[test]
    fn duplicate_cells_simulate_once() {
        let cfg = RunConfig::quick("astar").instructions(40_000);
        let mut plan = Plan::with_threads(2);
        let a = plan.push("first", cfg.clone());
        let b = plan.push("second", cfg.clone());
        let before = memo_stats();
        let results = plan.run().unwrap();
        let after = memo_stats();
        assert_eq!(results[a].totals.cycles, results[b].totals.cycles);
        // At most one fresh simulation for the pair; the sibling cell is
        // a hit (the config itself may already be cached process-wide).
        assert!(after.misses - before.misses <= 1);
        assert!(after.hits - before.hits >= 1);
    }

    #[test]
    fn plan_reports_memo_deltas_and_journal() {
        let cfg = RunConfig::quick("tunk").instructions(30_000);
        let mut plan = Plan::with_threads(2);
        plan.push("one", cfg.clone());
        plan.push("two", cfg.clone());
        let run = plan.run().unwrap();
        // Per-plan deltas: two cells, one distinct config, so at least
        // one cell was a memo hit regardless of process-wide state.
        assert_eq!(run.memo.hits + run.memo.misses, 2);
        assert_eq!(run.memo.entries, 1);
        assert!(run.memo.hits >= 1);
        assert_eq!(run.journal.len(), 2);
        assert_eq!(run.journal[0].label, "one");
        assert!(run.journal[1].memo_hit, "duplicate cell must be a hit");
        let fresh = run.journal.iter().filter(|c| !c.memo_hit).count();
        assert_eq!(fresh as u64, run.memo.misses);
        assert!(run.journal.iter().filter(|c| !c.memo_hit).all(|c| c.dur_us > 0));
    }

    #[test]
    fn plan_chrome_trace_is_valid_json() {
        let cfg = RunConfig::quick("tunk").instructions(30_000);
        let mut plan = Plan::with_threads(2);
        plan.push("cell a", cfg.clone());
        plan.push("cell a again", cfg);
        let run = plan.run().unwrap();
        let doc = seesaw_trace::json::Json::parse(&run.chrome_trace("test plan"))
            .expect("chrome trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(seesaw_trace::json::Json::as_array)
            .expect("traceEvents array");
        // Metadata + at least one record per journal cell.
        assert!(events.len() >= run.journal.len());
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(seesaw_trace::json::Json::as_str) == Some("i")
        }));
    }

    #[test]
    fn run_each_returns_per_cell_outcomes_and_memoizes_failures() {
        let chaos = seesaw_check::ChaosConfig {
            drop_tft_invalidation_on_splinter: true,
            ..Default::default()
        };
        let bad = RunConfig::quick("redis")
            .design(L1DesignKind::Seesaw)
            .with_checker()
            .with_faults(
                seesaw_check::FaultConfig::all(0xfa17_5eed)
                    .mean_interval(2_000)
                    .chaos(chaos),
            );
        let good = RunConfig::quick("astar").instructions(30_000);
        let mut plan = Plan::with_threads(2);
        plan.push("bad", bad.clone());
        plan.push("good", good);
        let out = plan.run_each();
        assert!(matches!(out.outcomes[0], Err(SimError::Check(_))));
        assert!(out.outcomes[1].is_ok());
        assert_eq!(out.journal.len(), 2);

        // The failure is memoized: a second plan serves it from cache.
        let before = memo_stats();
        let mut plan = Plan::with_threads(2);
        plan.push("bad again", bad.clone());
        let again = plan.run_each();
        let after = memo_stats();
        assert!(matches!(again.outcomes[0], Err(SimError::Check(_))));
        assert_eq!(after.misses, before.misses, "cached failure re-simulated");

        // `run()` surfaces the same error for the earliest failing cell.
        let mut plan = Plan::with_threads(2);
        plan.push("bad once more", bad);
        assert!(matches!(plan.run(), Err(SimError::Check(_))));
    }

    #[test]
    fn plan_matches_serial_execution() {
        let configs = [
            RunConfig::quick("astar").instructions(40_000),
            RunConfig::quick("astar")
                .instructions(40_000)
                .design(L1DesignKind::Seesaw),
        ];
        let mut plan = Plan::with_threads(2);
        for (i, cfg) in configs.iter().enumerate() {
            plan.push(format!("cell{i}"), cfg.clone());
        }
        let parallel = plan.run().unwrap();
        for (cfg, got) in configs.iter().zip(&parallel) {
            let serial = System::build(cfg).unwrap().run().unwrap();
            assert_eq!(serial.totals.cycles, got.totals.cycles);
            assert_eq!(serial.l1.misses, got.l1.misses);
            assert_eq!(
                serial.energy.total_nj().to_bits(),
                got.energy.total_nj().to_bits()
            );
        }
    }
}
