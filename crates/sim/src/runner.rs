//! Deterministic parallel experiment engine with memoized runs.
//!
//! The paper's evaluation is a large grid of *independent* simulations:
//! every figure and table sweeps workloads × designs × knobs, and many
//! cells (most prominently the baseline-VIPT runs every comparison
//! divides by) recur across sweeps. This module gives every driver the
//! same two-layer engine:
//!
//! * **A scoped worker pool.** [`Plan`] collects `(label, RunConfig)`
//!   cells and [`Plan::run`] executes them across `std::thread::scope`
//!   workers (no external dependencies — see the rand/proptest/criterion
//!   path shims for why the workspace builds offline). Results come back
//!   in plan order, and because every run is seeded purely by its own
//!   [`RunConfig`], the parallel output is bit-identical to executing the
//!   same plan serially.
//! * **A content-addressed memo cache.** Each config is fingerprinted
//!   (its full `Debug` rendering — every field participates, so two
//!   configs collide only when they are equal) and finished
//!   [`RunResult`]s are kept in a process-wide table. A config that
//!   recurs — across cells of one plan, across plans, across figures in
//!   one binary, or across `cargo test` threads — is simulated once per
//!   process and served from the cache afterwards. Determinism makes
//!   this sound: a memoized result is the result a fresh run would
//!   produce.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `SEESAW_THREADS` environment variable (used by
//! `scripts/check.sh` and `scripts/bench.sh`).
//!
//! # Example
//!
//! ```
//! use seesaw_sim::{runner::Plan, L1DesignKind, RunConfig};
//!
//! let mut plan = Plan::new();
//! let base = plan.push("base", RunConfig::quick("redis"));
//! let seesaw = plan.push("seesaw", RunConfig::quick("redis").design(L1DesignKind::Seesaw));
//! let results = plan.run().unwrap();
//! assert!(results[seesaw].runtime_improvement_pct(&results[base]) > 0.0);
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{RunConfig, RunResult, SimError, System};

/// Process-wide memo cache state.
struct MemoState {
    results: HashMap<String, RunResult>,
    hits: u64,
    misses: u64,
}

static MEMO: OnceLock<Mutex<MemoState>> = OnceLock::new();

fn memo() -> &'static Mutex<MemoState> {
    MEMO.get_or_init(|| {
        Mutex::new(MemoState {
            results: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// A snapshot of the process-wide memo cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Plan cells served from the cache (including duplicates inside one
    /// plan, which are simulated once).
    pub hits: u64,
    /// Plan cells that required a fresh simulation.
    pub misses: u64,
    /// Distinct configurations currently cached.
    pub entries: usize,
}

/// Returns the memo-cache counters accumulated so far in this process.
pub fn memo_stats() -> MemoStats {
    let m = memo().lock().expect("memo lock");
    MemoStats {
        hits: m.hits,
        misses: m.misses,
        entries: m.results.len(),
    }
}

/// The content address of a configuration: its complete `Debug`
/// rendering. Every `RunConfig` field derives `Debug`, so the fingerprint
/// changes whenever any knob changes and two fingerprints are equal only
/// for equal configs — no hand-maintained hash to fall out of sync.
pub fn fingerprint(config: &RunConfig) -> String {
    format!("{config:?}")
}

/// The worker count: `SEESAW_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn worker_threads() -> usize {
    match std::env::var("SEESAW_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// An ordered parallel map: applies `f` to every item across the worker
/// pool and returns the outputs in input order. Used directly by drivers
/// whose unit of work is not a full [`RunConfig`] simulation (e.g. the
/// Fig. 2a functional cache sweep) and by [`Plan::run`] underneath.
pub fn parallel_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    parallel_map_with(worker_threads(), items, f)
}

fn parallel_map_with<T, R>(threads: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// An ordered grid of labelled simulation cells.
///
/// Drivers push one cell per `System::build(..)?.run()?` they need,
/// remember the returned indices, call [`Plan::run`] once, and assemble
/// their rows from the ordered results. See the module docs for the
/// execution and memoization model.
#[derive(Debug, Default)]
pub struct Plan {
    cells: Vec<(String, RunConfig)>,
    threads: Option<usize>,
}

impl Plan {
    /// An empty plan using the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plan pinned to `threads` workers (tests use this to
    /// exercise the parallel path regardless of the host's core count).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            cells: Vec::new(),
            threads: Some(threads.max(1)),
        }
    }

    /// Appends a cell and returns its index into [`Plan::run`]'s output.
    pub fn push(&mut self, label: impl Into<String>, config: RunConfig) -> usize {
        self.cells.push((label.into(), config));
        self.cells.len() - 1
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Executes every cell — distinct configurations in parallel, each
    /// simulated at most once per process — and returns the results in
    /// plan order.
    ///
    /// # Errors
    /// Returns the error of the earliest cell (in plan order) whose
    /// simulation failed — the same error a serial front-to-back
    /// execution of the plan would have surfaced first.
    pub fn run(self) -> Result<Vec<RunResult>, SimError> {
        let threads = self.threads.unwrap_or_else(worker_threads);
        let keys: Vec<String> = self.cells.iter().map(|(_, c)| fingerprint(c)).collect();

        // Distinct configurations not already memoized become jobs.
        let mut jobs: Vec<(String, RunConfig)> = Vec::new();
        {
            let m = memo().lock().expect("memo lock");
            let mut queued: HashSet<&str> = HashSet::new();
            for ((_, cfg), key) in self.cells.iter().zip(&keys) {
                if !m.results.contains_key(key.as_str()) && queued.insert(key) {
                    jobs.push((key.clone(), cfg.clone()));
                }
            }
        }

        let outcomes = parallel_map_with(threads, &jobs, |(_, cfg)| System::build(cfg)?.run());

        let mut errors: HashMap<String, SimError> = HashMap::new();
        {
            let mut m = memo().lock().expect("memo lock");
            m.misses += jobs.len() as u64;
            m.hits += (keys.len() - jobs.len()) as u64;
            for ((key, _), outcome) in jobs.into_iter().zip(outcomes) {
                match outcome {
                    Ok(result) => {
                        m.results.insert(key, result);
                    }
                    Err(e) => {
                        errors.insert(key, e);
                    }
                }
            }
        }

        // Surface the earliest failure in plan order, as serial execution
        // would have.
        for key in &keys {
            if let Some(e) = errors.remove(key) {
                return Err(e);
            }
        }

        let m = memo().lock().expect("memo lock");
        Ok(keys
            .iter()
            .map(|k| m.results[k.as_str()].clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L1DesignKind;

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = RunConfig::quick("redis");
        let b = RunConfig::quick("redis").design(L1DesignKind::Seesaw);
        let c = RunConfig::quick("redis").memhog(10);
        assert_eq!(fingerprint(&a), fingerprint(&RunConfig::quick("redis")));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_with(4, &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_plan_runs() {
        assert!(Plan::new().run().unwrap().is_empty());
        assert!(Plan::new().is_empty());
    }

    #[test]
    fn duplicate_cells_simulate_once() {
        let cfg = RunConfig::quick("astar").instructions(40_000);
        let mut plan = Plan::with_threads(2);
        let a = plan.push("first", cfg.clone());
        let b = plan.push("second", cfg.clone());
        let before = memo_stats();
        let results = plan.run().unwrap();
        let after = memo_stats();
        assert_eq!(results[a].totals.cycles, results[b].totals.cycles);
        // At most one fresh simulation for the pair; the sibling cell is
        // a hit (the config itself may already be cached process-wide).
        assert!(after.misses - before.misses <= 1);
        assert!(after.hits - before.hits >= 1);
    }

    #[test]
    fn plan_matches_serial_execution() {
        let configs = [
            RunConfig::quick("astar").instructions(40_000),
            RunConfig::quick("astar")
                .instructions(40_000)
                .design(L1DesignKind::Seesaw),
        ];
        let mut plan = Plan::with_threads(2);
        for (i, cfg) in configs.iter().enumerate() {
            plan.push(format!("cell{i}"), cfg.clone());
        }
        let parallel = plan.run().unwrap();
        for (cfg, got) in configs.iter().zip(&parallel) {
            let serial = System::build(cfg).unwrap().run().unwrap();
            assert_eq!(serial.totals.cycles, got.totals.cycles);
            assert_eq!(serial.l1.misses, got.l1.misses);
            assert_eq!(
                serial.energy.total_nj().to_bits(),
                got.energy.total_nj().to_bits()
            );
        }
    }
}
