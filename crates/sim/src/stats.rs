//! Results of one simulation run.

use seesaw_cache::CacheStats;
use seesaw_check::{CheckerSummary, InjectionStats};
use seesaw_coherence::CoherenceStats;
use seesaw_core::{SeesawStats, TftStats};
use seesaw_cpu::RunTotals;
use seesaw_energy::EnergyBreakdown;
use seesaw_tlb::TlbStats;
use seesaw_trace::{Csv, Log2Histogram, MetricsRegistry, TraceData};

/// One telemetry sample: deltas over a sampling window of the measured
/// run (enabled with [`crate::RunConfig::sample_interval`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Instructions retired when the window closed.
    pub instructions: u64,
    /// Cycles per instruction over the window.
    pub cpi: f64,
    /// L1 misses per kilo-instruction over the window.
    pub mpki: f64,
    /// TFT hit rate over the window. A window with zero TFT lookups
    /// carries over the previous window's rate (NaN-free), rather than
    /// reporting a misleading 0.
    pub tft_hit_rate: f64,
    /// Page walks per kilo-instruction over the window.
    pub walk_mpki: f64,
    /// Mean L1 ways probed per demand access over the window.
    pub ways_per_access: f64,
}

impl Sample {
    /// Column headers matching [`Sample::csv_row`].
    pub const CSV_COLUMNS: [&'static str; 6] = [
        "instructions",
        "cpi",
        "mpki",
        "tft_hit_rate",
        "walk_mpki",
        "ways_per_access",
    ];

    /// One CSV row of this sample's fields.
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.instructions.to_string(),
            format!("{:.6}", self.cpi),
            format!("{:.6}", self.mpki),
            format!("{:.6}", self.tft_hit_rate),
            format!("{:.6}", self.walk_mpki),
            format!("{:.6}", self.ways_per_access),
        ]
    }

    /// Renders a window series as a CSV document.
    pub fn csv(samples: &[Sample]) -> String {
        let mut csv = Csv::new(&Self::CSV_COLUMNS);
        for s in samples {
            csv.row(&s.csv_row());
        }
        csv.render()
    }
}

/// Everything a run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Core timing totals.
    pub totals: RunTotals,
    /// Wall-clock nanoseconds at the configured frequency.
    pub runtime_ns: f64,
    /// Whole-hierarchy energy breakdown.
    pub energy: EnergyBreakdown,
    /// L1 counters.
    pub l1: CacheStats,
    /// L1 misses per kilo-instruction.
    pub l1_mpki: f64,
    /// L1 TLB counters.
    pub tlb_l1: TlbStats,
    /// Page walks performed.
    pub walks: u64,
    /// SEESAW counters (zeroes for baseline designs).
    pub seesaw: SeesawStats,
    /// TFT counters (zeroes for baseline designs).
    pub tft: TftStats,
    /// Fraction of the footprint backed by superpages after allocation
    /// (Fig. 3's metric).
    pub superpage_coverage: f64,
    /// Fraction of memory references that touched superpage-backed data
    /// (the paper reports 53–95 %, §V).
    pub superpage_ref_fraction: f64,
    /// Way-prediction accuracy, if a predictor was attached.
    pub way_prediction_accuracy: Option<f64>,
    /// Coherence probes delivered to the L1.
    pub coherence_probes: u64,
    /// 2 MB slices that wanted a superpage but were demoted to base
    /// pages (allocation-time fallback plus failed injected promotions).
    pub demotions: u64,
    /// Fault-injection counts, when an injector was attached.
    pub faults: Option<InjectionStats>,
    /// Shadow-checker summary, when the checker was enabled.
    pub checker: Option<CheckerSummary>,
    /// Windowed telemetry (empty unless sampling was enabled).
    pub samples: Vec<Sample>,
    /// Log2 distribution of page-walk latency over the measured window.
    pub walk_latency: Log2Histogram,
    /// Log2 distribution of L1 miss penalty (outer-hierarchy cycles) over
    /// the measured window.
    pub miss_penalty: Log2Histogram,
    /// Flat namespaced snapshot of every counter in the system.
    pub metrics: MetricsRegistry,
    /// Captured event trace, when [`crate::RunConfig::trace`] was set.
    pub trace: Option<TraceData>,
    /// Coherence-substrate counters, when a real directory (or snoopy
    /// bus) generated the probes ([`crate::ProbeSource::Coherence`]).
    pub coherence: Option<CoherenceStats>,
    /// Per-core measured-window results, one entry per core (a single
    /// entry for `cores = 1`). The top-level fields above are the
    /// fieldwise aggregates of these.
    pub cores: Vec<CoreResult>,
}

/// One core's slice of a run: measured-window deltas of everything that
/// core privately owns.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Core index (also the coherence directory's requester id).
    pub core: usize,
    /// This core's timing totals.
    pub totals: RunTotals,
    /// This core's L1 counters.
    pub l1: CacheStats,
    /// This core's L1 TLB counters.
    pub tlb_l1: TlbStats,
    /// Page walks this core performed.
    pub walks: u64,
    /// SEESAW counters (zeroes for baseline designs).
    pub seesaw: SeesawStats,
    /// TFT counters (zeroes for baseline designs).
    pub tft: TftStats,
    /// Coherence probes delivered to this core's L1 (from peers under
    /// [`crate::ProbeSource::Coherence`], synthetic otherwise).
    pub coherence_probes: u64,
    /// Fraction of this core's references that touched superpage-backed
    /// data.
    pub superpage_ref_fraction: f64,
    /// Way-prediction accuracy, if a predictor was attached.
    pub way_prediction_accuracy: Option<f64>,
    /// This core's injector counts, when faults were enabled.
    pub faults: Option<InjectionStats>,
    /// This core's shadow-checker summary, when the checker was enabled.
    pub checker: Option<CheckerSummary>,
    /// This core's windowed telemetry (empty unless sampling was enabled).
    pub samples: Vec<Sample>,
}

impl RunResult {
    /// Percent runtime improvement of `self` (the candidate) over
    /// `baseline`: positive = faster.
    pub fn runtime_improvement_pct(&self, baseline: &RunResult) -> f64 {
        100.0 * (1.0 - self.totals.cycles as f64 / baseline.totals.cycles as f64)
    }

    /// Percent memory-hierarchy energy saved versus `baseline`.
    pub fn energy_savings_pct(&self, baseline: &RunResult) -> f64 {
        100.0 * (1.0 - self.energy.total_nj() / baseline.energy.total_nj())
    }
}

/// Mean/min/max summary over a set of percentages (the error bars of
/// Figs. 8–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize nothing");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self { mean, min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_values() {
        let s = Summary::of(&[1.0, 3.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot summarize nothing")]
    fn empty_summary_panics() {
        Summary::of(&[]);
    }
}
