//! Live sweep status: heartbeat plumbing, the shared cell board, and
//! the atomic `status.json` writer.
//!
//! This is the consumer side of `seesaw_trace::ops`. The pieces:
//!
//! * [`Progress`] — the hot loop's heartbeat probe, monomorphized
//!   exactly like the event `Sink`: `System::run` is generic over
//!   `P: Progress`, [`NoProgress`] carries `ENABLED = false` so every
//!   publication site compiles away, and [`ActiveProgress`] batches
//!   retired-instruction deltas into the cell's shared
//!   [`CellProgress`] atomics (one relaxed `fetch_add` per ~64k
//!   instructions, nothing per reference).
//! * A thread-local hand-off ([`set_cell_progress`] /
//!   [`current_cell_progress`]): the supervised cell thread installs
//!   its heartbeat before building the system, `System::run` picks it
//!   up without a signature change rippling through every caller.
//!   Each *attempt* gets a fresh [`CellProgress`], so a watchdog-killed
//!   thread that is still running keeps writing into an Arc nobody
//!   reads anymore — leaked threads cannot corrupt live status.
//! * [`StatusBoard`] — the shared table of one sweep's cells: lifecycle
//!   state ([`CellState`]), attempt/retry counts, per-cell heartbeats,
//!   and a bounded log of recent transitions. The runner's workers
//!   update it; readers render it.
//! * [`StatusWriter`] — a background thread that renders the board to
//!   `status.json` every `SEESAW_STATUS_INTERVAL_MS` (default 200 ms)
//!   using the store's tmp+`rename` idiom, so the file is *always* a
//!   complete, valid JSON document no matter when a poller reads it.
//!   `watch -n1 cat status.json`, the `seesaw-status` CLI, or a future
//!   HTTP front-end can all tail it.
//! * [`OpsSummary`] — the one structured emitter for the end-of-sweep
//!   `[memo]` / `[store]` / `[supervisor]` stderr lines the bench
//!   binaries used to format by hand (and `scripts/bench.sh` scrapes).
//!
//! Enable with `SEESAW_STATUS=<dir>` (empty value: `target/status`), or
//! explicitly per plan with `Plan::with_status`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use seesaw_trace::json::escape;
use seesaw_trace::ops::{CellPhase, CellProgress, CellState, OpsSweepStats};

use crate::runner::{MemoStats, SupervisorStats};
use crate::store::StoreStats;

// ---------------------------------------------------------------------------
// The hot-loop probe.
// ---------------------------------------------------------------------------

/// The heartbeat probe the simulation hot loop is generic over. Mirrors
/// the event `Sink` contract: every publication site is guarded by
/// `if P::ENABLED`, a compile-time constant, so the disabled
/// instantiation carries no heartbeat code at all.
pub trait Progress {
    /// Compile-time enable flag (see the trait docs).
    const ENABLED: bool;

    /// Accounts `n` retired instructions (batched internally).
    fn add(&mut self, n: u64);

    /// Publishes any batched instructions immediately.
    fn flush(&mut self);

    /// Publishes the current run phase.
    fn set_phase(&mut self, phase: CellPhase);

    /// Publishes the run's total instruction target (for fractions).
    fn set_target(&mut self, target: u64);
}

/// The disabled probe: every publication site monomorphizes to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl Progress for NoProgress {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _n: u64) {}

    #[inline(always)]
    fn flush(&mut self) {}

    #[inline(always)]
    fn set_phase(&mut self, _phase: CellPhase) {}

    #[inline(always)]
    fn set_target(&mut self, _target: u64) {}
}

/// Instructions batched locally before one relaxed `fetch_add` into the
/// shared heartbeat — keeps the probe out of the hot loop's cache
/// traffic entirely between flushes.
const PROGRESS_BATCH: u64 = 1 << 16;

/// The live probe: batches locally, publishes into the attempt's shared
/// [`CellProgress`].
#[derive(Debug, Clone)]
pub struct ActiveProgress {
    cell: Arc<CellProgress>,
    pending: u64,
}

impl ActiveProgress {
    /// A probe publishing into `cell`.
    pub fn new(cell: Arc<CellProgress>) -> Self {
        ActiveProgress { cell, pending: 0 }
    }
}

impl Progress for ActiveProgress {
    const ENABLED: bool = true;

    #[inline]
    fn add(&mut self, n: u64) {
        self.pending += n;
        if self.pending >= PROGRESS_BATCH {
            self.cell.add_instructions(self.pending);
            self.pending = 0;
        }
    }

    fn flush(&mut self) {
        if self.pending > 0 {
            self.cell.add_instructions(self.pending);
            self.pending = 0;
        }
    }

    fn set_phase(&mut self, phase: CellPhase) {
        self.cell.set_phase(phase);
    }

    fn set_target(&mut self, target: u64) {
        self.cell.set_target(target);
    }
}

thread_local! {
    static CELL_PROGRESS: RefCell<Option<Arc<CellProgress>>> = const { RefCell::new(None) };
}

/// Installs (or with `None`, clears) the calling thread's heartbeat
/// cell. The supervised cell thread calls this before `System::build`;
/// `System::run` consults it via [`current_cell_progress`]. Thread
/// death clears it for free — every attempt runs on a fresh thread.
pub fn set_cell_progress(progress: Option<Arc<CellProgress>>) {
    CELL_PROGRESS.with(|p| *p.borrow_mut() = progress);
}

/// The heartbeat cell installed on this thread, if any.
pub fn current_cell_progress() -> Option<Arc<CellProgress>> {
    CELL_PROGRESS.with(|p| p.borrow().clone())
}

// ---------------------------------------------------------------------------
// The status board.
// ---------------------------------------------------------------------------

/// One recorded lifecycle transition (bounded log; see
/// [`StatusBoard::snapshot_json`]).
#[derive(Debug, Clone)]
pub struct Transition {
    /// Milliseconds after the sweep began.
    pub ms: u64,
    /// Plan index of the cell that transitioned.
    pub cell: usize,
    /// The state entered.
    pub state: CellState,
}

/// Transitions retained in the bounded log.
const TRANSITION_LOG: usize = 64;

#[derive(Debug)]
struct CellRow {
    label: String,
    digest8: String,
    state: CellState,
    attempt: u32,
    retries: u32,
    cached: bool,
    progress: Option<Arc<CellProgress>>,
    /// Phase and instructions frozen when the cell reached a terminal
    /// state (the live Arc is dropped then, so a leaked timed-out
    /// thread's late writes go nowhere visible).
    frozen_instructions: u64,
    frozen_phase: CellPhase,
    started_ms: Option<u64>,
    finished_ms: Option<u64>,
}

impl CellRow {
    fn instructions(&self) -> u64 {
        match &self.progress {
            Some(p) => p.instructions(),
            None => self.frozen_instructions,
        }
    }

    fn phase(&self) -> CellPhase {
        match &self.progress {
            Some(p) => p.phase(),
            None => self.frozen_phase,
        }
    }

    fn target(&self) -> u64 {
        self.progress.as_ref().map_or(0, |p| p.target())
    }
}

#[derive(Debug)]
struct BoardInner {
    cells: Vec<CellRow>,
    transitions: VecDeque<Transition>,
    supervisor: SupervisorStats,
    store: Option<StoreStats>,
    done: bool,
}

/// The shared live table of one sweep's cells. Runner workers mutate it
/// through the transition methods; the [`StatusWriter`] (and tests)
/// render it with [`StatusBoard::snapshot_json`]. One short mutex
/// guards the table — it is touched per cell *transition* and per
/// snapshot, never per instruction (heartbeats go through the lock-free
/// [`CellProgress`] atomics instead).
#[derive(Debug)]
pub struct StatusBoard {
    sweep: String,
    threads: usize,
    started: Instant,
    inner: Mutex<BoardInner>,
}

impl StatusBoard {
    /// A new board for `sweep`, with every cell `Queued`. Each cell is
    /// `(label, digest8)` in plan order.
    pub fn new(sweep: &str, cells: &[(String, String)], threads: usize) -> Arc<StatusBoard> {
        Arc::new(StatusBoard {
            sweep: sweep.to_string(),
            threads,
            started: Instant::now(),
            inner: Mutex::new(BoardInner {
                cells: cells
                    .iter()
                    .map(|(label, digest8)| CellRow {
                        label: label.clone(),
                        digest8: digest8.clone(),
                        state: CellState::Queued,
                        attempt: 0,
                        retries: 0,
                        cached: false,
                        progress: None,
                        frozen_instructions: 0,
                        frozen_phase: CellPhase::Build,
                        started_ms: None,
                        finished_ms: None,
                    })
                    .collect(),
                transitions: VecDeque::new(),
                supervisor: SupervisorStats::default(),
                store: None,
                done: false,
            }),
        })
    }

    /// The sweep's name.
    pub fn sweep(&self) -> &str {
        &self.sweep
    }

    fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn log(inner: &mut BoardInner, ms: u64, cell: usize, state: CellState) {
        if inner.transitions.len() == TRANSITION_LOG {
            inner.transitions.pop_front();
        }
        inner.transitions.push_back(Transition { ms, cell, state });
    }

    /// Marks a cell resolved without running: served from the memo
    /// cache or persistent store (`Done`), or a memoized failure
    /// (`Failed`).
    pub fn cached(&self, cell: usize, failed: bool) {
        let ms = self.elapsed_ms();
        let mut inner = self.inner.lock().expect("status board lock");
        let state = if failed {
            CellState::Failed
        } else {
            CellState::Done
        };
        let row = &mut inner.cells[cell];
        row.state = state;
        row.cached = true;
        row.finished_ms = Some(ms);
        Self::log(&mut inner, ms, cell, state);
    }

    /// Marks the cells of one job `Running` and returns the attempt's
    /// fresh heartbeat (install it in the supervised thread). Duplicate
    /// plan cells share one job, so one call covers all of `cells`.
    pub fn start_attempt(&self, cells: &[usize], attempt: u32) -> Arc<CellProgress> {
        let ms = self.elapsed_ms();
        let progress = Arc::new(CellProgress::new());
        let mut inner = self.inner.lock().expect("status board lock");
        for &cell in cells {
            let row = &mut inner.cells[cell];
            row.state = CellState::Running;
            row.attempt = attempt;
            row.progress = Some(progress.clone());
            if row.started_ms.is_none() {
                row.started_ms = Some(ms);
            }
            Self::log(&mut inner, ms, cell, CellState::Running);
        }
        progress
    }

    /// Marks the cells of one job `Retrying(next_attempt)` after a
    /// transient failure. The dead attempt's heartbeat is frozen and
    /// detached.
    pub fn retrying(&self, cells: &[usize], next_attempt: u32) {
        let ms = self.elapsed_ms();
        let mut inner = self.inner.lock().expect("status board lock");
        for &cell in cells {
            let row = &mut inner.cells[cell];
            row.frozen_instructions = row.instructions();
            row.frozen_phase = row.phase();
            row.progress = None;
            row.state = CellState::Retrying(next_attempt);
            row.retries = next_attempt;
            Self::log(&mut inner, ms, cell, CellState::Retrying(next_attempt));
        }
    }

    /// Marks the cells of one job terminal (`Done`, `Failed`, or
    /// `Skipped`), freezing and detaching their heartbeats.
    pub fn finish(&self, cells: &[usize], state: CellState) {
        debug_assert!(state.is_terminal());
        let ms = self.elapsed_ms();
        let mut inner = self.inner.lock().expect("status board lock");
        for &cell in cells {
            let row = &mut inner.cells[cell];
            row.frozen_instructions = row.instructions();
            row.frozen_phase = row.phase();
            row.progress = None;
            row.state = state;
            row.finished_ms = Some(ms);
            Self::log(&mut inner, ms, cell, state);
        }
    }

    /// Publishes the sweep's supervision/store rollup (typically once,
    /// at the end; mid-sweep calls are fine too).
    pub fn set_rollup(&self, supervisor: SupervisorStats, store: Option<StoreStats>) {
        let mut inner = self.inner.lock().expect("status board lock");
        inner.supervisor = supervisor;
        inner.store = store;
    }

    /// Marks the whole sweep terminal — after this the snapshot's
    /// `state` field reads `"done"`.
    pub fn mark_done(&self) {
        self.inner.lock().expect("status board lock").done = true;
    }

    /// The sweep-level rollup at this instant. ETA is memo/store-aware
    /// by construction: cached cells resolve instantly at sweep start,
    /// so only genuinely-simulating cells contribute remaining work.
    pub fn rollup(&self) -> OpsSweepStats {
        let elapsed = self.started.elapsed().as_secs_f64();
        let inner = self.inner.lock().expect("status board lock");
        self.rollup_locked(&inner, elapsed)
    }

    fn rollup_locked(&self, inner: &BoardInner, elapsed_secs: f64) -> OpsSweepStats {
        let mut s = OpsSweepStats {
            cells: inner.cells.len() as u64,
            ..OpsSweepStats::default()
        };
        // Duplicate plan cells share one heartbeat Arc; count each
        // job's instructions once or the rollup double-books.
        let mut seen_live: Vec<*const CellProgress> = Vec::new();
        let mut known_target = 0u64;
        let mut remaining = 0.0f64;
        let mut unknown_remaining = 0u64;
        for row in &inner.cells {
            match row.state {
                CellState::Queued => s.queued += 1,
                CellState::Running => s.running += 1,
                CellState::Retrying(_) => s.retrying += 1,
                CellState::Done => s.done += 1,
                CellState::Failed => s.failed += 1,
                CellState::Skipped => s.skipped += 1,
            }
            if row.cached {
                s.cached += 1;
                continue;
            }
            match &row.progress {
                Some(p) => {
                    let ptr = Arc::as_ptr(p);
                    if !seen_live.contains(&ptr) {
                        seen_live.push(ptr);
                        s.instructions += p.instructions();
                        let target = p.target();
                        if target > 0 {
                            known_target = known_target.max(target);
                            remaining += target.saturating_sub(p.instructions()) as f64;
                        } else {
                            unknown_remaining += 1;
                        }
                    }
                }
                None => {
                    s.instructions += row.frozen_instructions;
                    if !row.state.is_terminal() {
                        unknown_remaining += 1;
                    } else if row.frozen_instructions > 0 {
                        known_target = known_target.max(row.frozen_instructions);
                    }
                }
            }
            if row.state == CellState::Queued {
                unknown_remaining += 1;
            }
        }
        if elapsed_secs > 0.0 {
            s.minstr_per_sec = s.instructions as f64 / elapsed_secs / 1e6;
        }
        // Cells without a published target (queued, or running before
        // the warmup begins) are estimated at the largest target any
        // cell has published — the sweep's cells share a budget, so
        // this is the right order of magnitude.
        remaining += (unknown_remaining * known_target) as f64;
        let rate = s.instructions as f64 / elapsed_secs.max(1e-9);
        if !s.is_terminal() && remaining > 0.0 && rate > 0.0 && s.instructions > 0 {
            s.eta_seconds = remaining / rate;
        }
        s
    }

    /// Renders the board as one complete JSON document (the
    /// `status.json` payload). Always valid JSON: strings are escaped,
    /// floats rendered finite, and the whole document is produced under
    /// one lock acquisition.
    pub fn snapshot_json(&self) -> String {
        let elapsed_ms = self.elapsed_ms();
        let inner = self.inner.lock().expect("status board lock");
        let rollup = self.rollup_locked(&inner, elapsed_ms as f64 / 1e3);
        let mut s = String::with_capacity(1024 + inner.cells.len() * 256);
        s.push_str(&format!(
            "{{\"sweep\":\"{}\",\"state\":\"{}\",\"elapsed_ms\":{},\"threads\":{},",
            escape(&self.sweep),
            if inner.done { "done" } else { "running" },
            elapsed_ms,
            self.threads
        ));
        s.push_str("\"cells\":[");
        for (i, row) in inner.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let target = row.target();
            let instructions = row.instructions();
            let fraction = if target == 0 {
                if row.state.is_terminal() && !matches!(row.state, CellState::Skipped) {
                    1.0
                } else {
                    0.0
                }
            } else {
                (instructions as f64 / target as f64).min(1.0)
            };
            s.push_str(&format!(
                "{{\"index\":{},\"label\":\"{}\",\"digest\":\"{}\",\"state\":\"{}\",\
                 \"attempt\":{},\"retries\":{},\"cached\":{},\"phase\":\"{}\",\
                 \"instructions\":{},\"target\":{},\"fraction\":{:.4},\
                 \"started_ms\":{},\"finished_ms\":{}}}",
                i,
                escape(&row.label),
                row.digest8,
                row.state.label(),
                row.attempt,
                row.retries,
                row.cached,
                row.phase().label(),
                instructions,
                target,
                fraction,
                match row.started_ms {
                    Some(ms) => ms.to_string(),
                    None => "null".to_string(),
                },
                match row.finished_ms {
                    Some(ms) => ms.to_string(),
                    None => "null".to_string(),
                },
            ));
        }
        s.push_str("],");
        s.push_str(&format!(
            "\"rollup\":{{\"cells\":{},\"queued\":{},\"running\":{},\"done\":{},\
             \"retrying\":{},\"failed\":{},\"skipped\":{},\"cached\":{},\
             \"instructions\":{},\"minstr_per_sec\":{:.3},\"eta_seconds\":{:.1}}},",
            rollup.cells,
            rollup.queued,
            rollup.running,
            rollup.done,
            rollup.retrying,
            rollup.failed,
            rollup.skipped,
            rollup.cached,
            rollup.instructions,
            rollup.minstr_per_sec,
            rollup.eta_seconds,
        ));
        let sup = &inner.supervisor;
        s.push_str(&format!(
            "\"supervisor\":{{\"cells\":{},\"panics_caught\":{},\"timeouts\":{},\
             \"retries\":{},\"permanent_failures\":{},\"cells_skipped\":{}}},",
            sup.cells,
            sup.panics_caught,
            sup.timeouts,
            sup.retries,
            sup.permanent_failures,
            sup.cells_skipped,
        ));
        match &inner.store {
            Some(st) => s.push_str(&format!(
                "\"store\":{{\"hits\":{},\"failure_hits\":{},\"misses\":{},\"writes\":{},\
                 \"write_errors\":{},\"corrupt\":{},\"traced_skipped\":{}}},",
                st.hits,
                st.failure_hits,
                st.misses,
                st.writes,
                st.write_errors,
                st.corrupt,
                st.traced_skipped,
            )),
            None => s.push_str("\"store\":null,"),
        }
        s.push_str("\"transitions\":[");
        for (i, t) in inner.transitions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"ms\":{},\"cell\":{},\"state\":\"{}\"}}",
                t.ms,
                t.cell,
                t.state.label()
            ));
        }
        s.push_str("]}");
        s
    }
}

// ---------------------------------------------------------------------------
// The writer.
// ---------------------------------------------------------------------------

/// Tmp-file sequence for [`write_status_atomic`] — unique names even
/// when several sweeps in one process share a status dir.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `payload` to `dir/status.json` via the store's tmp+`rename`
/// idiom: the document lands under a private name first, then one
/// atomic rename replaces the visible file, so a concurrent reader sees
/// either the old complete document or the new one — never a torn
/// write.
pub fn write_status_atomic(dir: &Path, payload: &str) -> io::Result<PathBuf> {
    let path = dir.join("status.json");
    let tmp = dir.join(format!(
        ".status-tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let commit = (|| {
        std::fs::write(&tmp, payload)?;
        std::fs::rename(&tmp, &path)
    })();
    if let Err(e) = commit {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(path)
}

/// The background renderer: snapshots a [`StatusBoard`] to
/// `dir/status.json` every `interval` until [`StatusWriter::finish`]
/// (which always writes one final, terminal snapshot).
#[derive(Debug)]
pub struct StatusWriter {
    board: Arc<StatusBoard>,
    dir: PathBuf,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusWriter {
    /// Creates `dir`, writes the first snapshot, and spawns the
    /// renderer thread.
    pub fn spawn(board: Arc<StatusBoard>, dir: &Path, interval: Duration) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        write_status_atomic(dir, &board.snapshot_json())?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_board = board.clone();
        let thread_dir = dir.to_path_buf();
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("seesaw-status".to_string())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if write_status_atomic(&thread_dir, &thread_board.snapshot_json()).is_err() {
                        // The dir vanished or the disk is full; live
                        // status is best-effort, the sweep itself is
                        // not — stop writing, keep simulating.
                        break;
                    }
                }
            })?;
        Ok(StatusWriter {
            board,
            dir: dir.to_path_buf(),
            stop,
            handle: Some(handle),
        })
    }

    /// Path of the snapshot file this writer maintains.
    pub fn path(&self) -> PathBuf {
        self.dir.join("status.json")
    }

    /// Stops the renderer and writes the final snapshot (call after
    /// [`StatusBoard::mark_done`], so the file on disk ends terminal).
    pub fn finish(mut self) {
        self.stop_and_flush();
    }

    fn stop_and_flush(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
            let _ = write_status_atomic(&self.dir, &self.board.snapshot_json());
        }
    }
}

impl Drop for StatusWriter {
    fn drop(&mut self) {
        // A panicking sweep still leaves a coherent (if non-terminal)
        // snapshot behind.
        self.stop_and_flush();
    }
}

// ---------------------------------------------------------------------------
// Environment knobs.
// ---------------------------------------------------------------------------

/// The status directory named by `SEESAW_STATUS`: unset → `None`, empty
/// value → `target/status`, otherwise the value itself.
pub fn status_dir_from_env() -> Option<PathBuf> {
    match std::env::var("SEESAW_STATUS") {
        Ok(v) if v.is_empty() => Some(PathBuf::from("target/status")),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}

/// The snapshot interval: `SEESAW_STATUS_INTERVAL_MS` (default 200 ms,
/// floor 10 ms).
pub fn status_interval_from_env() -> Duration {
    let ms = std::env::var("SEESAW_STATUS_INTERVAL_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(200)
        .max(10);
    Duration::from_millis(ms)
}

// ---------------------------------------------------------------------------
// The consolidated ops summary.
// ---------------------------------------------------------------------------

/// The end-of-sweep operational summary every bench binary prints: the
/// process-wide memo, store, and supervisor counters, formatted in one
/// place. `scripts/bench.sh` scrapes the `[memo]` and `[store]` lines,
/// so their shapes are load-bearing; this struct is now the only
/// formatter of them.
#[derive(Debug, Clone)]
pub struct OpsSummary {
    /// Process-wide memo counters.
    pub memo: MemoStats,
    /// The process store's size, directory, and traffic (when
    /// `SEESAW_STORE` is active).
    pub store: Option<(usize, PathBuf, StoreStats)>,
    /// Process-wide supervision counters.
    pub supervisor: SupervisorStats,
    /// Process-wide distributed-fabric counters (all zero outside a
    /// `seesaw-worker` process).
    pub fabric: seesaw_trace::FabricWorkerStats,
}

impl OpsSummary {
    /// Gathers the current process-wide counters.
    pub fn process() -> Self {
        OpsSummary {
            memo: crate::runner::memo_stats(),
            store: crate::store::process_store()
                .map(|s| (s.len(), s.dir().to_path_buf(), s.stats())),
            supervisor: crate::runner::supervisor_stats(),
            fabric: crate::fabric::session_fabric(),
        }
    }

    /// Renders the summary lines (no trailing newline): always `[memo]`,
    /// then `[store]` when a store is active, then `[supervisor]` when
    /// any supervision event fired, then `[fabric]` when this process
    /// worked the distributed queue.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[memo] {} hits / {} misses ({} distinct configs simulated)",
            self.memo.hits, self.memo.misses, self.memo.entries
        );
        if let Some((len, dir, s)) = &self.store {
            out.push_str(&format!(
                "\n[store] {} at {}: {} hits ({} failures) / {} misses, {} writes ({} errors), {} corrupt, {} traced skipped",
                len,
                dir.display(),
                s.hits,
                s.failure_hits,
                s.misses,
                s.writes,
                s.write_errors,
                s.corrupt,
                s.traced_skipped
            ));
        }
        let sup = &self.supervisor;
        if sup.panics_caught + sup.timeouts + sup.retries + sup.permanent_failures
            + sup.cells_skipped
            > 0
        {
            out.push_str(&format!(
                "\n[supervisor] {} cells: {} panics caught, {} timeouts, {} retries, {} permanent failures, {} skipped",
                sup.cells,
                sup.panics_caught,
                sup.timeouts,
                sup.retries,
                sup.permanent_failures,
                sup.cells_skipped
            ));
        }
        let fab = &self.fabric;
        if fab.any() {
            out.push_str(&format!(
                "\n[fabric] {} claims ({} steals, {} races lost), {} completed, {} check failures, {} error markers, {} renewals ({} lost), {} idle polls",
                fab.claims,
                fab.steals,
                fab.races_lost,
                fab.completed,
                fab.check_failures,
                fab.error_markers,
                fab.renewals,
                fab.renewals_lost,
                fab.idle_polls
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_trace::json::Json;

    fn board2() -> Arc<StatusBoard> {
        StatusBoard::new(
            "test-sweep",
            &[
                ("cell a".to_string(), "aaaaaaaa".to_string()),
                ("cell b".to_string(), "bbbbbbbb".to_string()),
            ],
            2,
        )
    }

    #[test]
    fn progress_probe_batches_and_flushes() {
        let cell = Arc::new(CellProgress::new());
        let mut p = ActiveProgress::new(cell.clone());
        p.add(10);
        assert_eq!(cell.instructions(), 0, "batched, not yet published");
        p.add(PROGRESS_BATCH);
        assert_eq!(cell.instructions(), PROGRESS_BATCH + 10);
        p.add(3);
        p.flush();
        assert_eq!(cell.instructions(), PROGRESS_BATCH + 13);
        p.set_phase(CellPhase::Measure);
        p.set_target(500);
        assert_eq!(cell.phase(), CellPhase::Measure);
        assert_eq!(cell.target(), 500);
        // The disabled probe is inert and flagged off at compile time.
        fn enabled<P: Progress>(_p: &P) -> bool {
            P::ENABLED
        }
        let mut none = NoProgress;
        none.add(5);
        none.flush();
        assert!(!enabled(&none));
        assert!(enabled(&p));
    }

    #[test]
    fn thread_local_handoff_is_per_thread() {
        let cell = Arc::new(CellProgress::new());
        set_cell_progress(Some(cell.clone()));
        assert!(current_cell_progress().is_some());
        let other = std::thread::spawn(current_cell_progress).join().unwrap();
        assert!(other.is_none(), "installation must not leak across threads");
        set_cell_progress(None);
        assert!(current_cell_progress().is_none());
    }

    #[test]
    fn board_lifecycle_rolls_up() {
        let board = board2();
        board.cached(1, false);
        let progress = board.start_attempt(&[0], 0);
        progress.set_target(1000);
        progress.add_instructions(400);
        let r = board.rollup();
        assert_eq!(r.cells, 2);
        assert_eq!(r.running, 1);
        assert_eq!(r.done, 1);
        assert_eq!(r.cached, 1);
        assert_eq!(r.instructions, 400);
        assert!(!r.is_terminal());
        board.finish(&[0], CellState::Done);
        let r = board.rollup();
        assert!(r.is_terminal());
        assert_eq!(r.done, 2);
        assert_eq!(r.instructions, 400, "frozen at finish");
        assert_eq!(r.eta_seconds, 0.0);
    }

    #[test]
    fn retry_freezes_dead_attempt_heartbeat() {
        let board = board2();
        let p0 = board.start_attempt(&[0], 0);
        p0.add_instructions(100);
        board.retrying(&[0], 1);
        // The leaked attempt keeps writing; the board must not see it.
        p0.add_instructions(1_000_000);
        assert_eq!(board.rollup().instructions, 100);
        let p1 = board.start_attempt(&[0], 1);
        p1.add_instructions(50);
        // A fresh attempt restarts its own count; the board prefers the
        // live heartbeat over the frozen one.
        assert_eq!(board.rollup().retrying, 0);
        assert_eq!(board.rollup().running, 1);
    }

    #[test]
    fn snapshot_is_valid_json_with_schema() {
        let board = board2();
        let progress = board.start_attempt(&[0], 0);
        progress.set_phase(CellPhase::Warmup);
        progress.set_target(200);
        progress.add_instructions(100);
        board.cached(1, false);
        board.set_rollup(SupervisorStats::default(), None);
        let doc = Json::parse(&board.snapshot_json()).expect("snapshot must parse");
        assert_eq!(doc.get("sweep").and_then(Json::as_str), Some("test-sweep"));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("running"));
        let cells = doc.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("state").and_then(Json::as_str), Some("running"));
        assert_eq!(cells[0].get("phase").and_then(Json::as_str), Some("warmup"));
        assert_eq!(cells[0].get("fraction").and_then(Json::as_f64), Some(0.5));
        assert_eq!(cells[1].get("cached").and_then(Json::as_bool), Some(true));
        let rollup = doc.get("rollup").unwrap();
        assert_eq!(rollup.get("cells").and_then(Json::as_u64), Some(2));
        assert!(doc.get("transitions").and_then(Json::as_array).is_some());
        board.mark_done();
        let done = Json::parse(&board.snapshot_json()).unwrap();
        assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("seesaw-status-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_status_atomic(&dir, "{\"a\":1}").unwrap();
        let path = write_status_atomic(&dir, "{\"b\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\":2}");
        // No tmp litter after successful commits.
        let tmp_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with(".status-tmp")
            })
            .count();
        assert_eq!(tmp_files, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ops_summary_preserves_scraped_shapes() {
        let summary = OpsSummary {
            memo: MemoStats {
                hits: 7,
                misses: 3,
                entries: 3,
            },
            store: Some((
                5,
                PathBuf::from("/tmp/store"),
                StoreStats {
                    hits: 4,
                    failure_hits: 1,
                    misses: 2,
                    writes: 2,
                    write_errors: 0,
                    corrupt: 0,
                    traced_skipped: 0,
                },
            )),
            supervisor: SupervisorStats {
                cells: 3,
                panics_caught: 1,
                timeouts: 0,
                retries: 1,
                permanent_failures: 0,
                cells_skipped: 0,
            },
            fabric: seesaw_trace::FabricWorkerStats {
                claims: 4,
                steals: 1,
                races_lost: 2,
                renewals: 6,
                renewals_lost: 0,
                completed: 3,
                check_failures: 1,
                error_markers: 0,
                idle_polls: 5,
                busy_ms: 1234,
            },
        };
        let text = summary.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "[memo] 7 hits / 3 misses (3 distinct configs simulated)"
        );
        assert_eq!(
            lines[1],
            "[store] 5 at /tmp/store: 4 hits (1 failures) / 2 misses, 2 writes (0 errors), 0 corrupt, 0 traced skipped"
        );
        assert_eq!(
            lines[2],
            "[supervisor] 3 cells: 1 panics caught, 0 timeouts, 1 retries, 0 permanent failures, 0 skipped"
        );
        assert_eq!(
            lines[3],
            "[fabric] 4 claims (1 steals, 2 races lost), 3 completed, 1 check failures, 0 error markers, 6 renewals (0 lost), 5 idle polls"
        );
        // bench.sh's awk fields: $2 = hits, $5 = misses on the memo line.
        let fields: Vec<&str> = lines[0].split_whitespace().collect();
        assert_eq!(fields[1], "7");
        assert_eq!(fields[4], "3");
        // Quiet supervisor and idle fabric ⇒ neither line appears.
        let quiet = OpsSummary {
            memo: MemoStats {
                hits: 0,
                misses: 0,
                entries: 0,
            },
            store: None,
            supervisor: SupervisorStats {
                cells: 9,
                ..Default::default()
            },
            fabric: seesaw_trace::FabricWorkerStats::default(),
        };
        assert_eq!(quiet.render().lines().count(), 1);
    }
}
