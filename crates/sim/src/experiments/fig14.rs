//! Fig. 14: scaling large L1s — SEESAW versus the other ways to rescue a
//! 128 KB VIPT cache's unacceptable latency (PIPT with lower
//! associativity, smaller/faster TLBs).

use seesaw_workloads::catalog;

use crate::report::pct;
use crate::runner::Plan;
use crate::stats::Summary;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SimError, Table};

/// One frequency's comparison: SEESAW versus the best alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Frequency label.
    pub freq: &'static str,
    /// Runtime improvement of SEESAW over the 128 KB VIPT baseline
    /// (avg/min/max over workloads).
    pub seesaw_perf: Summary,
    /// Runtime improvement of the best alternative design.
    pub others_perf: Summary,
    /// Energy savings of SEESAW.
    pub seesaw_energy: Summary,
    /// Energy savings of the best alternative.
    pub others_energy: Summary,
    /// Which alternative won ("pipt-4w", "pipt-8w/tlb64", …).
    pub best_other: String,
}

/// The alternative design points swept: PIPT associativities crossed with
/// full-size or halved 4 KB L1 TLBs (shrinking the TLB is how real PIPT
/// designs recover lookup latency, at the cost of TLB hit rate).
fn alternatives() -> Vec<(String, L1DesignKind, Option<usize>)> {
    let mut alts = Vec::new();
    for ways in [2usize, 4, 8] {
        alts.push((format!("pipt-{ways}w"), L1DesignKind::Pipt { ways }, None));
        alts.push((
            format!("pipt-{ways}w/tlb64"),
            L1DesignKind::Pipt { ways },
            Some(64),
        ));
    }
    alts
}

/// Runs the design-space comparison at 128 KB across the three clocks.
/// The whole panel — every frequency's baseline, SEESAW, and alternative
/// cells — is one plan; the best-alternative selection happens on the
/// collected results.
pub fn fig14(instructions: u64) -> Result<Vec<Fig14Row>, SimError> {
    let workloads = catalog();
    let mut plan = Plan::new();
    // Per frequency: baseline indices, SEESAW indices, and per-alternative
    // indices, one per workload.
    let mut cells = Vec::new();
    for freq in Frequency::ALL {
        let base_of = |w: &str| {
            RunConfig::paper(w)
                .l1_size(128)
                .frequency(freq)
                .cpu(CpuKind::OutOfOrder)
                .instructions(instructions)
        };
        let baselines: Vec<usize> = workloads
            .iter()
            .map(|w| plan.push(format!("{}/base", w.name), base_of(w.name)))
            .collect();
        let mut queue = |design: L1DesignKind, tlb: Option<usize>, label: &str| -> Vec<usize> {
            workloads
                .iter()
                .map(|w| {
                    let mut cfg = base_of(w.name).design(design);
                    cfg.l1_tlb_4k_entries = tlb;
                    plan.push(format!("{}/{label}", w.name), cfg)
                })
                .collect()
        };
        let seesaw = queue(L1DesignKind::Seesaw, None, "seesaw");
        let alts: Vec<(String, Vec<usize>)> = alternatives()
            .into_iter()
            .map(|(name, design, tlb)| {
                let indices = queue(design, tlb, &name);
                (name, indices)
            })
            .collect();
        cells.push((freq, baselines, seesaw, alts));
    }
    let results = plan.run()?;

    let mut rows = Vec::new();
    for (freq, baselines, seesaw, alts) in cells {
        let eval = |indices: &[usize]| -> (Vec<f64>, Vec<f64>) {
            indices
                .iter()
                .zip(&baselines)
                .map(|(&i, &b)| {
                    (
                        results[i].runtime_improvement_pct(&results[b]),
                        results[i].energy_savings_pct(&results[b]),
                    )
                })
                .unzip()
        };
        let (seesaw_perf, seesaw_energy) = eval(&seesaw);
        let mut best: Option<(String, Vec<f64>, Vec<f64>)> = None;
        for (name, indices) in alts {
            let (perf, energy) = eval(&indices);
            let mean = perf.iter().sum::<f64>() / perf.len() as f64;
            let better = best
                .as_ref()
                .map(|(_, p, _)| mean > p.iter().sum::<f64>() / p.len() as f64)
                .unwrap_or(true);
            if better {
                best = Some((name, perf, energy));
            }
        }
        let (best_other, others_perf, others_energy) = best.expect("non-empty alternatives");
        rows.push(Fig14Row {
            freq: freq.label(),
            seesaw_perf: Summary::of(&seesaw_perf),
            others_perf: Summary::of(&others_perf),
            seesaw_energy: Summary::of(&seesaw_energy),
            others_energy: Summary::of(&others_energy),
            best_other,
        });
    }
    Ok(rows)
}

/// Renders the rows.
pub fn fig14_table(rows: &[Fig14Row]) -> Table {
    let mut table = Table::new(vec![
        "freq",
        "SEESAW perf",
        "Others perf",
        "SEESAW energy",
        "Others energy",
        "best other",
    ]);
    for r in rows {
        table.row(vec![
            r.freq.into(),
            pct(r.seesaw_perf.mean),
            pct(r.others_perf.mean),
            pct(r.seesaw_energy.mean),
            pct(r.others_energy.mean),
            r.best_other.clone(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;

    #[test]
    fn seesaw_beats_a_pipt_alternative_at_128kb() {
        // One workload, one alternative — the full panel runs in the
        // binary. SEESAW keeps the 32-way hit rate AND fast hits; PIPT
        // gives up associativity and serializes the TLB.
        let base_cfg = RunConfig::quick("olio").l1_size(128);
        let base = System::build(&base_cfg).unwrap().run().unwrap();
        let seesaw = System::build(&base_cfg.clone().design(L1DesignKind::Seesaw))
            .unwrap()
            .run()
            .unwrap();
        let pipt = System::build(&base_cfg.clone().design(L1DesignKind::Pipt { ways: 4 }))
            .unwrap()
            .run()
            .unwrap();
        let s = seesaw.runtime_improvement_pct(&base);
        let p = pipt.runtime_improvement_pct(&base);
        assert!(
            s > p,
            "SEESAW ({s:.2}%) must beat the PIPT alternative ({p:.2}%)"
        );
    }

    #[test]
    fn alternatives_list_is_nontrivial() {
        assert!(alternatives().len() >= 4);
    }

    #[test]
    fn table_renders() {
        let rows = vec![Fig14Row {
            freq: "1.33GHz",
            seesaw_perf: Summary::of(&[10.0]),
            others_perf: Summary::of(&[5.0]),
            seesaw_energy: Summary::of(&[12.0]),
            others_energy: Summary::of(&[6.0]),
            best_other: "pipt-4w".into(),
        }];
        assert!(fig14_table(&rows).to_string().contains("pipt-4w"));
    }
}
