//! Fig. 10: whole-hierarchy energy savings; Fig. 11: how those savings
//! split between CPU-side and coherence lookups.

use seesaw_workloads::catalog;

use crate::report::pct;
use crate::runner::Plan;
use crate::stats::Summary;
use crate::{CpuKind, Frequency, L1DesignKind, SimError, Table};

use super::fig7::{runtime_cfg, SIZES_KB};

/// One Fig. 10 bar: energy savings summary for a core × size × frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Core kind label ("InO" / "OOO").
    pub core: &'static str,
    /// Frequency label.
    pub freq: &'static str,
    /// L1 capacity in KB.
    pub size_kb: u64,
    /// Mean/min/max percent memory-hierarchy energy saved.
    pub summary: Summary,
}

/// One Fig. 11 bar: the CPU-side vs coherence split of a workload's
/// savings.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Workload name.
    pub workload: &'static str,
    /// Share of the saving from CPU-side lookups (0–1).
    pub cpu_share: f64,
    /// Share of the saving from coherence lookups (0–1).
    pub coherence_share: f64,
}

#[cfg(test)]
pub(crate) fn energy_saving(
    workload: &str,
    size_kb: u64,
    freq: Frequency,
    cpu: CpuKind,
    instructions: u64,
) -> Result<(f64, f64, f64), SimError> {
    let base_cfg = runtime_cfg(workload, size_kb, freq, cpu, instructions);
    let mut plan = Plan::new();
    let base = plan.push(format!("{workload}/base"), base_cfg.clone());
    let seesaw = plan.push(
        format!("{workload}/seesaw"),
        base_cfg.design(L1DesignKind::Seesaw),
    );
    let results = plan.run()?;
    let saving = results[seesaw].energy_savings_pct(&results[base]);
    let (cpu_share, coh_share) = results[seesaw].energy.savings_split(&results[base].energy);
    Ok((saving, cpu_share, coh_share))
}

/// Fig. 10: energy savings per core kind × frequency × size, summarized
/// over all workloads. One plan covers the whole
/// core × frequency × size × workload grid; the baseline/SEESAW pairs it
/// shares with Figs. 7–9 are memoized, not re-run.
pub fn fig10(instructions: u64) -> Result<Vec<Fig10Row>, SimError> {
    let workloads = catalog();
    let mut plan = Plan::new();
    let mut cells = Vec::new();
    for (cpu, core) in [(CpuKind::InOrder, "InO"), (CpuKind::OutOfOrder, "OOO")] {
        for freq in Frequency::ALL {
            for &size_kb in &SIZES_KB {
                let pairs: Vec<(usize, usize)> = workloads
                    .iter()
                    .map(|w| {
                        let base_cfg = runtime_cfg(w.name, size_kb, freq, cpu, instructions);
                        let base =
                            plan.push(format!("{}/{}KB/base", w.name, size_kb), base_cfg.clone());
                        let seesaw = plan.push(
                            format!("{}/{}KB/seesaw", w.name, size_kb),
                            base_cfg.design(L1DesignKind::Seesaw),
                        );
                        (base, seesaw)
                    })
                    .collect();
                cells.push((core, freq, size_kb, pairs));
            }
        }
    }
    let results = plan.run()?;
    Ok(cells
        .into_iter()
        .map(|(core, freq, size_kb, pairs)| {
            let savings: Vec<f64> = pairs
                .into_iter()
                .map(|(base, seesaw)| results[seesaw].energy_savings_pct(&results[base]))
                .collect();
            Fig10Row {
                core,
                freq: freq.label(),
                size_kb,
                summary: Summary::of(&savings),
            }
        })
        .collect())
}

/// Fig. 11: per-workload CPU-side vs coherence shares (64 KB, 1.33 GHz,
/// out-of-order — the paper's configuration).
pub fn fig11(instructions: u64) -> Result<Vec<Fig11Row>, SimError> {
    let workloads = catalog();
    let mut plan = Plan::new();
    let pairs: Vec<(usize, usize)> = workloads
        .iter()
        .map(|w| {
            let base_cfg =
                runtime_cfg(w.name, 64, Frequency::F1_33, CpuKind::OutOfOrder, instructions);
            let base = plan.push(format!("{}/base", w.name), base_cfg.clone());
            let seesaw = plan.push(
                format!("{}/seesaw", w.name),
                base_cfg.design(L1DesignKind::Seesaw),
            );
            (base, seesaw)
        })
        .collect();
    let results = plan.run()?;
    Ok(workloads
        .iter()
        .zip(pairs)
        .map(|(w, (base, seesaw))| {
            let (cpu_share, coherence_share) =
                results[seesaw].energy.savings_split(&results[base].energy);
            Fig11Row {
                workload: w.name,
                cpu_share,
                coherence_share,
            }
        })
        .collect())
}

/// Renders Fig. 10.
pub fn fig10_table(rows: &[Fig10Row]) -> Table {
    let mut table = Table::new(vec!["core", "freq", "size", "avg", "min", "max"]);
    for r in rows {
        table.row(vec![
            r.core.into(),
            r.freq.into(),
            format!("{}KB", r.size_kb),
            pct(r.summary.mean),
            pct(r.summary.min),
            pct(r.summary.max),
        ]);
    }
    table
}

/// Renders Fig. 11.
pub fn fig11_table(rows: &[Fig11Row]) -> Table {
    let mut table = Table::new(vec!["workload", "CPU-side", "Coherence"]);
    for r in rows {
        table.row(vec![
            r.workload.into(),
            pct(r.cpu_share * 100.0),
            pct(r.coherence_share * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 120_000;

    #[test]
    fn seesaw_always_saves_energy() {
        for name in ["redis", "cann", "astar"] {
            let (saving, _, _) =
                energy_saving(name, 64, Frequency::F1_33, CpuKind::OutOfOrder, QUICK).unwrap();
            assert!(saving > 0.0, "{name}: saving {saving:.2}%");
        }
    }

    #[test]
    fn multithreaded_workloads_attribute_more_to_coherence() {
        // Paper Fig. 11: canneal/tunkrank attribute ≈⅓ of savings to
        // coherence; quiet SPEC workloads attribute much less.
        let coh = |name: &str| {
            energy_saving(name, 64, Frequency::F1_33, CpuKind::OutOfOrder, QUICK)
                .unwrap()
                .2
        };
        let cann = coh("cann");
        let astar = coh("astar");
        assert!(
            cann > astar,
            "canneal ({cann:.3}) must attribute more to coherence than astar ({astar:.3})"
        );
        assert!(cann > 0.1, "MT coherence share should be substantial: {cann:.3}");
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let (_, cpu, coh) =
            energy_saving("tunk", 64, Frequency::F1_33, CpuKind::OutOfOrder, QUICK).unwrap();
        assert!((cpu + coh - 1.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&coh));
    }

    #[test]
    fn tables_render() {
        let rows = vec![Fig10Row {
            core: "OOO",
            freq: "1.33GHz",
            size_kb: 32,
            summary: Summary::of(&[10.0]),
        }];
        assert_eq!(fig10_table(&rows).len(), 1);
        let rows = vec![Fig11Row {
            workload: "cann",
            cpu_share: 0.7,
            coherence_share: 0.3,
        }];
        assert_eq!(fig11_table(&rows).len(), 1);
    }
}
