//! Fig. 2: the motivation study — MPKI, access latency, and access energy
//! as a function of associativity for 16 KB–256 KB caches.

use seesaw_cache::{CacheConfig, IndexPolicy, SetAssocCache, WayMask};
use seesaw_energy::SramModel;
use seesaw_workloads::{catalog, TraceGenerator, WorkloadSpec};

use crate::report::num;
use crate::runner::parallel_map;
use crate::Table;

/// Associativities swept by Fig. 2 (DM through 32-way).
pub const FIG2_ASSOCS: [usize; 5] = [1, 4, 8, 16, 32];

/// Cache sizes (KB) swept by Fig. 2a.
pub const FIG2A_SIZES_KB: [u64; 5] = [16, 32, 64, 128, 256];

/// One Fig. 2a cell: average MPKI at a geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2aRow {
    /// Cache size in KB.
    pub size_kb: u64,
    /// Associativity.
    pub ways: usize,
    /// MPKI averaged across all 16 workloads.
    pub avg_mpki: f64,
}

/// One Fig. 2b/2c cell: latency or energy at a geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2bRow {
    /// Cache size in KB.
    pub size_kb: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in ns (Fig. 2b) or energy in nJ (Fig. 2c).
    pub value: f64,
}

/// One functional cache simulation of `fig2a`'s sweep: a workload's
/// trace against one geometry.
fn fig2a_cell(spec: &WorkloadSpec, size_kb: u64, ways: usize, refs: usize) -> f64 {
    // Indexing policy is irrelevant for a hit-rate study; use
    // physical-style modulo indexing over the trace offsets.
    let config = CacheConfig::new(size_kb << 10, ways, 64, IndexPolicy::Pipt);
    let mut cache = SetAssocCache::new(config);
    let sets = config.sets();
    let full = WayMask::all(ways);
    let mut generator = TraceGenerator::new(spec, 0xf162a);
    let mut instructions = 0u64;
    for _ in 0..refs {
        let r = generator.next_ref();
        instructions += r.gap + 1;
        let ptag = r.offset / 64;
        let set = (ptag as usize) % sets;
        let hit = if r.is_write {
            cache.write(set, ptag, full).hit
        } else {
            cache.read(set, ptag, full).hit
        };
        if !hit {
            cache.fill(set, ptag, full, r.is_write);
        }
    }
    cache.stats().mpki(instructions)
}

/// Fig. 2a: average L1 MPKI versus associativity, per cache size.
/// Functional cache simulation over every workload's trace
/// (`refs_per_workload` references each), run across the worker pool —
/// one task per size × associativity × workload triple.
pub fn fig2a(refs_per_workload: usize) -> Vec<Fig2aRow> {
    let workloads = catalog();
    let mut triples = Vec::new();
    for &size_kb in &FIG2A_SIZES_KB {
        for &ways in &FIG2_ASSOCS {
            for spec in &workloads {
                triples.push((size_kb, ways, *spec));
            }
        }
    }
    let mpkis = parallel_map(&triples, |&(size_kb, ways, spec)| {
        fig2a_cell(&spec, size_kb, ways, refs_per_workload)
    });

    let mut rows = Vec::new();
    for &size_kb in &FIG2A_SIZES_KB {
        for &ways in &FIG2_ASSOCS {
            let mpki_sum: f64 = triples
                .iter()
                .zip(&mpkis)
                .filter(|((s, w, _), _)| *s == size_kb && *w == ways)
                .map(|(_, &mpki)| mpki)
                .sum();
            rows.push(Fig2aRow {
                size_kb,
                ways,
                avg_mpki: mpki_sum / workloads.len() as f64,
            });
        }
    }
    rows
}

/// Fig. 2b: access latency (ns) versus associativity, from the SRAM model.
pub fn fig2b() -> Vec<Fig2bRow> {
    sram_sweep(|sram, size, ways| sram.latency_ns(size, ways))
}

/// Fig. 2c: access energy (nJ) versus associativity, from the SRAM model.
pub fn fig2c() -> Vec<Fig2bRow> {
    sram_sweep(|sram, size, ways| sram.energy_nj(size, ways))
}

fn sram_sweep(f: impl Fn(&SramModel, u64, usize) -> f64) -> Vec<Fig2bRow> {
    let sram = SramModel::tsmc28_scaled_22nm();
    let mut rows = Vec::new();
    for &size_kb in &[16u64, 32, 64, 128] {
        for &ways in &[1usize, 2, 4, 8, 16, 32] {
            rows.push(Fig2bRow {
                size_kb,
                ways,
                value: f(&sram, size_kb, ways),
            });
        }
    }
    rows
}

/// Renders Fig. 2a rows as a size × associativity table.
pub fn fig2a_table(rows: &[Fig2aRow]) -> Table {
    let mut headers = vec!["size".to_string()];
    headers.extend(FIG2_ASSOCS.iter().map(|w| format!("{w}-way")));
    let mut table = Table::new(headers);
    for &size_kb in &FIG2A_SIZES_KB {
        let mut cells = vec![format!("{size_kb}KB")];
        for &ways in &FIG2_ASSOCS {
            let row = rows
                .iter()
                .find(|r| r.size_kb == size_kb && r.ways == ways)
                .expect("complete sweep");
            cells.push(num(row.avg_mpki));
        }
        table.row(cells);
    }
    table
}

/// Renders Fig. 2b/2c rows as a size × associativity table.
pub fn fig2bc_table(rows: &[Fig2bRow], unit: &str) -> Table {
    let assocs = [1usize, 2, 4, 8, 16, 32];
    let mut headers = vec!["size".to_string()];
    headers.extend(assocs.iter().map(|w| format!("{w}-way ({unit})")));
    let mut table = Table::new(headers);
    for &size_kb in &[16u64, 32, 64, 128] {
        let mut cells = vec![format!("{size_kb}KB")];
        for &ways in &assocs {
            let row = rows
                .iter()
                .find(|r| r.size_kb == size_kb && r.ways == ways)
                .expect("complete sweep");
            cells.push(format!("{:.3}", row.value));
        }
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_flattens_beyond_four_ways() {
        // The paper's central motivation claim: "Increasing associativity
        // beyond 4 does not significantly reduce miss rates."
        let rows = fig2a(40_000);
        for &size_kb in &FIG2A_SIZES_KB {
            let at = |ways: usize| {
                rows.iter()
                    .find(|r| r.size_kb == size_kb && r.ways == ways)
                    .unwrap()
                    .avg_mpki
            };
            let dm_to_4 = at(1) - at(4);
            let four_to_32 = at(4) - at(32);
            assert!(
                dm_to_4 > 2.0 * four_to_32.max(0.0),
                "{size_kb}KB: DM→4 saved {dm_to_4:.2} MPKI but 4→32 saved {four_to_32:.2}"
            );
        }
    }

    #[test]
    fn mpki_decreases_with_cache_size() {
        let rows = fig2a(20_000);
        let at = |size: u64| {
            rows.iter()
                .find(|r| r.size_kb == size && r.ways == 8)
                .unwrap()
                .avg_mpki
        };
        assert!(at(16) > at(64));
        assert!(at(64) > at(256));
    }

    #[test]
    fn latency_and_energy_grow_with_associativity() {
        for rows in [fig2b(), fig2c()] {
            for &size in &[16u64, 32, 64, 128] {
                let vals: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.size_kb == size)
                    .map(|r| r.value)
                    .collect();
                assert!(vals.windows(2).all(|w| w[1] > w[0]), "{size}KB not monotone");
            }
        }
    }

    #[test]
    fn tables_render() {
        let t = fig2a_table(&fig2a(5_000));
        assert_eq!(t.len(), 5);
        let t = fig2bc_table(&fig2b(), "ns");
        assert_eq!(t.len(), 4);
    }
}
