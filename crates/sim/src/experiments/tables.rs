//! Tables I–III: the lookup anatomy, the system parameters, and the L1
//! latency configurations.

use seesaw_core::{L1DataCache, L1Request, L1Timing, LookupCase, SeesawConfig, SeesawL1};
use seesaw_energy::SramModel;
use seesaw_mem::{PageSize, PhysAddr, VirtAddr};

use crate::runner::parallel_map;
use crate::{Frequency, Table};

/// One row of Table I: the anatomy of a SEESAW lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Page size of the access.
    pub page_size: &'static str,
    /// TFT outcome.
    pub tft: &'static str,
    /// Cache outcome.
    pub cache: &'static str,
    /// Observed lookup latency in cycles.
    pub cycles: u64,
    /// Observed ways probed.
    pub ways_probed: usize,
    /// Savings class versus the baseline.
    pub savings: &'static str,
}

/// Reproduces Table I by driving a 32 KB SEESAW L1 (1.33 GHz timing:
/// fast = 1 cycle, slow = 2) through the four cases.
pub fn table1() -> Vec<Table1Row> {
    let timing = L1Timing {
        fast_cycles: 1,
        slow_cycles: 2,
    };
    let mut l1 = SeesawL1::new(SeesawConfig::l1_32k(), timing);
    let super_req = |va: u64| {
        // Each 2 MB virtual region gets its own physical frame, preserving
        // the low 21 bits as a real superpage mapping would.
        let frame = 0x1_0000_0000 + (va >> 21 << 21);
        L1Request {
            va: VirtAddr::new(va),
            pa: PhysAddr::new(frame | (va & 0x1f_ffff)),
            page_size: PageSize::Super2M,
            is_write: false,
        }
    };
    let base_req = L1Request {
        va: VirtAddr::new(0x7000_3040),
        pa: PhysAddr::new(0x9040),
        page_size: PageSize::Base4K,
        is_write: false,
    };
    let mut rows = Vec::new();
    let mut push = |page_size, tft, cache, out: seesaw_core::L1AccessOutcome| {
        let savings = match out.case {
            LookupCase::SuperTftHitCacheHit => "Latency + Energy",
            LookupCase::SuperTftHitCacheMiss => "Energy",
            _ => "None",
        };
        rows.push(Table1Row {
            page_size,
            tft,
            cache,
            cycles: out.latency_cycles,
            ways_probed: out.ways_probed,
            savings,
        });
    };

    // Row 1: 2MB, TFT hit, cache hit.
    let req = super_req(0x4000_1040);
    l1.tft_fill(req.va);
    l1.access(&req); // warm the line
    push("2MB", "Hit", "Hit", l1.access(&req));
    // Row 2: 2MB, TFT hit, cache miss.
    let req = super_req(0x4080_1040);
    l1.tft_fill(req.va);
    push("2MB", "Hit", "Miss", l1.access(&req));
    // Row 3: 2MB, TFT miss.
    let req = super_req(0x40c0_1040);
    push("2MB", "Miss", "*", l1.access(&req));
    // Row 4: 4KB (TFT always misses for base pages).
    push("4KB", "Miss", "*", l1.access(&base_req));
    rows
}

/// Renders Table I.
pub fn table1_table(rows: &[Table1Row]) -> Table {
    let mut table = Table::new(vec!["PageSize", "TFT", "Cache", "Cycles", "Ways", "Savings"]);
    for r in rows {
        table.row(vec![
            r.page_size.into(),
            r.tft.into(),
            r.cache.into(),
            r.cycles.to_string(),
            r.ways_probed.to_string(),
            r.savings.into(),
        ]);
    }
    table
}

/// Table II: the target-system parameters, as configured in this
/// reproduction.
pub fn table2() -> Table {
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: [(&str, &str); 10] = [
        ("Out-of-order CPU", "~Sandybridge: 168-entry ROB, 54-entry scheduler, 4-wide"),
        ("In-order CPU", "~Atom: dual-issue, 16-stage pipeline"),
        ("L1 cache", "private split L1I (32KB) + L1D (Table III)"),
        ("TLB (Atom)", "L1: 64-entry 4KB + 32-entry 2MB; 512-entry L2"),
        ("TLB (Sandybridge)", "split L1: 128-entry 4KB + 16-entry 2MB"),
        ("LLC", "unified, 24MB"),
        ("DRAM", "51ns round-trip"),
        ("Technology", "22nm (scaled from TSMC 28nm)"),
        ("Frequencies", "1.33, 2.80, 4.00 GHz"),
        ("Coherence", "MOESI directory (snoopy variant available)"),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v.into()]);
    }
    t
}

/// One row of Table III: an L1 configuration's access latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Row {
    /// Capacity in KB.
    pub size_kb: u64,
    /// Baseline VIPT associativity.
    pub ways: usize,
    /// Frequency label.
    pub freq: &'static str,
    /// TFT lookup cycles (always 1).
    pub tft_cycles: u64,
    /// Full-set ("base page") lookup cycles.
    pub base_cycles: u64,
    /// Partition ("superpage") lookup cycles.
    pub super_cycles: u64,
}

/// Reproduces Table III from the SRAM model. Each geometry × frequency
/// cell is independent pure math, so the sweep rides the worker pool like
/// every other driver (it is trivially cheap either way).
pub fn table3() -> Vec<Table3Row> {
    let mut cells = Vec::new();
    for (size_kb, ways, partitions) in [(32u64, 8usize, 2usize), (64, 16, 4), (128, 32, 8)] {
        for freq in Frequency::ALL {
            cells.push((size_kb, ways, partitions, freq));
        }
    }
    parallel_map(&cells, |&(size_kb, ways, partitions, freq)| {
        let sram = SramModel::tsmc28_scaled_22nm();
        Table3Row {
            size_kb,
            ways,
            freq: freq.label(),
            tft_cycles: 1,
            base_cycles: sram.full_lookup_cycles(size_kb, ways, freq.ghz()),
            super_cycles: sram.partition_lookup_cycles(size_kb, ways, partitions, freq.ghz()),
        }
    })
}

/// Renders Table III.
pub fn table3_table(rows: &[Table3Row]) -> Table {
    let mut table = Table::new(vec![
        "size", "assoc", "freq", "TFT", "L1 base-page", "L1 superpage",
    ]);
    for r in rows {
        table.row(vec![
            format!("{}KB", r.size_kb),
            r.ways.to_string(),
            r.freq.into(),
            r.tft_cycles.to_string(),
            r.base_cycles.to_string(),
            r.super_cycles.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        // Row 1: fast, narrow, both savings.
        assert_eq!((rows[0].cycles, rows[0].ways_probed), (1, 4));
        assert_eq!(rows[0].savings, "Latency + Energy");
        // Row 2: narrow lookup, then the miss path.
        assert_eq!(rows[1].ways_probed, 4);
        assert_eq!(rows[1].savings, "Energy");
        // Rows 3-4: full lookup, no savings.
        for r in &rows[2..] {
            assert_eq!((r.cycles, r.ways_probed), (2, 8));
            assert_eq!(r.savings, "None");
        }
    }

    #[test]
    fn table3_matches_the_paper_exactly() {
        let rows = table3();
        let expect = [
            (32u64, "1.33GHz", 2u64, 1u64),
            (32, "2.80GHz", 4, 2),
            (32, "4.00GHz", 5, 3),
            (64, "1.33GHz", 5, 1),
            (64, "2.80GHz", 9, 2),
            (64, "4.00GHz", 13, 3),
            (128, "1.33GHz", 14, 2),
            (128, "2.80GHz", 30, 3),
            (128, "4.00GHz", 42, 4),
        ];
        for (size, freq, base, sup) in expect {
            let row = rows
                .iter()
                .find(|r| r.size_kb == size && r.freq == freq)
                .unwrap();
            assert_eq!(row.base_cycles, base, "{size}KB {freq} base");
            assert_eq!(row.super_cycles, sup, "{size}KB {freq} super");
            assert_eq!(row.tft_cycles, 1);
        }
    }

    #[test]
    fn tables_render() {
        assert_eq!(table1_table(&table1()).len(), 4);
        assert_eq!(table3_table(&table3()).len(), 9);
        assert!(table2().to_string().contains("MOESI"));
    }
}
