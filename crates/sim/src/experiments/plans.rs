//! A name → cell registry over the figure and ablation drivers, for
//! distributed submission.
//!
//! The figure drivers in this module interleave grid construction with
//! result assembly, so they cannot hand their cells to another process
//! directly. This registry duplicates each driver's grid — same loop
//! order, same labels, same [`RunConfig`] builders — as a pure
//! `Vec<(label, config)>` that `seesaw-submit` can enqueue on the
//! [`crate::fabric`] job queue. Once workers have resolved every cell
//! into the shared store, re-running the real driver against that store
//! is all hits and reproduces the figure bit-identically.
//!
//! Fidelity is pinned by tests: because cell results are memoized
//! per-process by fingerprint, running a registry plan and then its
//! driver (or vice versa) must report zero additional memo misses.
//! Drivers whose cells are not plain [`RunConfig`] sweeps (fig2*, fig3
//! and the tables drive [`crate::System`] and the OS model directly)
//! are deliberately absent.

use seesaw_core::InsertionPolicy;
use seesaw_workloads::{catalog, cloud_subset, fig12_subset};

use super::designs::DESIGN_LAB;
use super::fig7::{runtime_cfg, SIZES_KB};
use super::fig12::FIG12_MEMHOG;
use super::fig13::FIG13_TFT_ENTRIES;
use super::multicore::{CORE_COUNTS, MULTICORE_WORKLOADS};
use super::scheduler::{MEMHOG_LEVELS, SQUASH_COSTS};
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SchedulerHintPolicy};

/// A labelled grid cell, exactly as the matching driver would
/// [`crate::runner::Plan::push`] it.
pub type PlanCell = (String, RunConfig);

/// Every plan name [`plan_cells`] accepts, in the order the paper
/// presents them.
pub const PLAN_NAMES: [&str; 14] = [
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "designs",
    "multicore",
    "scheduler",
    "partitions",
    "ablations",
];

/// Returns the names [`plan_cells`] accepts.
pub fn plan_names() -> &'static [&'static str] {
    &PLAN_NAMES
}

/// Returns the `(label, config)` grid the named driver would run at the
/// given instruction budget, or `None` for an unknown name.
pub fn plan_cells(name: &str, instructions: u64) -> Option<Vec<PlanCell>> {
    match name {
        "fig7" => Some(fig7_cells(instructions)),
        "fig8" => Some(freq_sweep_cells(CpuKind::OutOfOrder, instructions)),
        "fig9" => Some(freq_sweep_cells(CpuKind::InOrder, instructions)),
        "fig10" => Some(fig10_cells(instructions)),
        "fig11" => Some(fig11_cells(instructions)),
        "fig12" => Some(fig12_cells(instructions)),
        "fig13" => Some(fig13_cells(instructions)),
        "fig14" => Some(fig14_cells(instructions)),
        "fig15" => Some(fig15_cells(instructions)),
        "designs" => Some(designs_cells(instructions)),
        "multicore" => Some(multicore_cells(instructions)),
        "scheduler" => Some(scheduler_cells(instructions)),
        "partitions" => Some(partitions_cells(instructions)),
        "ablations" => Some(ablations_cells(instructions)),
        _ => None,
    }
}

fn base_seesaw(cells: &mut Vec<PlanCell>, prefix: &str, base_cfg: RunConfig) {
    cells.push((format!("{prefix}/base"), base_cfg.clone()));
    cells.push((
        format!("{prefix}/seesaw"),
        base_cfg.design(L1DesignKind::Seesaw),
    ));
}

fn fig7_cells(instructions: u64) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for spec in catalog() {
        for &size_kb in &SIZES_KB {
            let base_cfg = runtime_cfg(
                spec.name,
                size_kb,
                Frequency::F1_33,
                CpuKind::OutOfOrder,
                instructions,
            );
            base_seesaw(&mut cells, &format!("{}/{}KB", spec.name, size_kb), base_cfg);
        }
    }
    cells
}

fn freq_sweep_cells(cpu: CpuKind, instructions: u64) -> Vec<PlanCell> {
    let workloads = catalog();
    let mut cells = Vec::new();
    for freq in Frequency::ALL {
        for &size_kb in &SIZES_KB {
            for w in &workloads {
                let base_cfg = runtime_cfg(w.name, size_kb, freq, cpu, instructions);
                base_seesaw(&mut cells, &format!("{}/{}KB", w.name, size_kb), base_cfg);
            }
        }
    }
    cells
}

fn fig10_cells(instructions: u64) -> Vec<PlanCell> {
    let workloads = catalog();
    let mut cells = Vec::new();
    for (cpu, _core) in [(CpuKind::InOrder, "InO"), (CpuKind::OutOfOrder, "OOO")] {
        for freq in Frequency::ALL {
            for &size_kb in &SIZES_KB {
                for w in &workloads {
                    let base_cfg = runtime_cfg(w.name, size_kb, freq, cpu, instructions);
                    base_seesaw(&mut cells, &format!("{}/{}KB", w.name, size_kb), base_cfg);
                }
            }
        }
    }
    cells
}

fn fig11_cells(instructions: u64) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for w in catalog() {
        let base_cfg = runtime_cfg(w.name, 64, Frequency::F1_33, CpuKind::OutOfOrder, instructions);
        base_seesaw(&mut cells, w.name, base_cfg);
    }
    cells
}

fn fig12_cells(instructions: u64) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for spec in fig12_subset() {
        for &memhog in &FIG12_MEMHOG {
            let base_cfg = RunConfig::paper(spec.name)
                .l1_size(64)
                .frequency(Frequency::F1_33)
                .cpu(CpuKind::OutOfOrder)
                .memhog(memhog)
                .instructions(instructions);
            base_seesaw(&mut cells, &format!("{}/mh{}", spec.name, memhog), base_cfg);
        }
    }
    cells
}

fn fig13_cells(instructions: u64) -> Vec<PlanCell> {
    let workloads = catalog();
    let mut cells = Vec::new();
    for &tft_entries in &FIG13_TFT_ENTRIES {
        for &size_kb in &[32u64, 64, 128] {
            for w in &workloads {
                let mut cfg = RunConfig::paper(w.name)
                    .l1_size(size_kb)
                    .design(L1DesignKind::Seesaw)
                    .instructions(instructions);
                cfg.tft_entries = tft_entries;
                cells.push((format!("{}/tft{}/{}KB", w.name, tft_entries, size_kb), cfg));
            }
        }
    }
    cells
}

fn fig14_cells(instructions: u64) -> Vec<PlanCell> {
    let workloads = catalog();
    let mut cells = Vec::new();
    for freq in Frequency::ALL {
        let base_of = |w: &str| {
            RunConfig::paper(w)
                .l1_size(128)
                .frequency(freq)
                .cpu(CpuKind::OutOfOrder)
                .instructions(instructions)
        };
        for w in &workloads {
            cells.push((format!("{}/base", w.name), base_of(w.name)));
        }
        let mut queue = |design: L1DesignKind, tlb: Option<usize>, label: &str| {
            for w in &workloads {
                let mut cfg = base_of(w.name).design(design);
                cfg.l1_tlb_4k_entries = tlb;
                cells.push((format!("{}/{label}", w.name), cfg));
            }
        };
        queue(L1DesignKind::Seesaw, None, "seesaw");
        for ways in [2usize, 4, 8] {
            queue(L1DesignKind::Pipt { ways }, None, &format!("pipt-{ways}w"));
            queue(
                L1DesignKind::Pipt { ways },
                Some(64),
                &format!("pipt-{ways}w/tlb64"),
            );
        }
    }
    cells
}

fn fig15_cells(instructions: u64) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for w in cloud_subset() {
        let base_cfg = RunConfig::paper(w.name)
            .l1_size(64)
            .frequency(Frequency::F1_33)
            .cpu(CpuKind::OutOfOrder)
            .instructions(instructions);
        cells.push((format!("{}/base", w.name), base_cfg.clone()));
        cells.push((
            format!("{}/wp", w.name),
            base_cfg.clone().design(L1DesignKind::BaselineWithWayPrediction),
        ));
        cells.push((
            format!("{}/seesaw", w.name),
            base_cfg.clone().design(L1DesignKind::Seesaw),
        ));
        cells.push((
            format!("{}/wp+seesaw", w.name),
            base_cfg.design(L1DesignKind::SeesawWithWayPrediction),
        ));
    }
    cells
}

/// The design lab runs on redis, matching the `designs` binary.
fn designs_cells(instructions: u64) -> Vec<PlanCell> {
    let workload = "redis";
    let base_cfg = RunConfig::paper(workload)
        .l1_size(64)
        .frequency(Frequency::F1_33)
        .cpu(CpuKind::OutOfOrder)
        .instructions(instructions);
    DESIGN_LAB
        .iter()
        .map(|(name, kind)| {
            (
                format!("{workload}/{name}"),
                base_cfg.clone().design(*kind),
            )
        })
        .collect()
}

fn multicore_cells(instructions: u64) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for workload in MULTICORE_WORKLOADS {
        for cores in CORE_COUNTS {
            let protocols: &[&'static str] = if cores == 1 {
                &["synthetic"]
            } else {
                &["directory", "snoopy"]
            };
            for &protocol in protocols {
                for design in [L1DesignKind::BaselineVipt, L1DesignKind::Seesaw] {
                    let mut cfg = RunConfig::paper(workload)
                        .design(design)
                        .instructions(instructions)
                        .cores(cores);
                    cfg.snoopy = protocol == "snoopy";
                    cells.push((format!("{workload}/{cores}c/{protocol}/{design:?}"), cfg));
                }
            }
        }
    }
    cells
}

fn scheduler_cells(instructions: u64) -> Vec<PlanCell> {
    let mut cells = Vec::new();
    for &memhog in &MEMHOG_LEVELS {
        let base_cfg = RunConfig::paper("redis")
            .l1_size(64)
            .frequency(Frequency::F1_33)
            .cpu(CpuKind::OutOfOrder)
            .memhog(memhog)
            .instructions(instructions);
        cells.push((format!("redis/mh{memhog}/base"), base_cfg.clone()));
        for policy in [
            SchedulerHintPolicy::Occupancy,
            SchedulerHintPolicy::AlwaysFast,
            SchedulerHintPolicy::AlwaysSlow,
        ] {
            for &squash_cycles in &SQUASH_COSTS {
                let mut cfg = base_cfg.clone().design(L1DesignKind::Seesaw);
                cfg.scheduler_hint = policy;
                cfg.hit_time_squash_cycles = squash_cycles;
                cells.push((format!("redis/mh{memhog}/{policy:?}/sq{squash_cycles}"), cfg));
            }
        }
    }
    cells
}

fn partitions_cells(instructions: u64) -> Vec<PlanCell> {
    let base_cfg = RunConfig::paper("redis")
        .l1_size(64)
        .frequency(Frequency::F1_33)
        .cpu(CpuKind::OutOfOrder)
        .instructions(instructions);
    let mut cells = vec![("redis/base".to_string(), base_cfg.clone())];
    for ways_per_partition in [2usize, 4, 8] {
        let partitions = 16 / ways_per_partition;
        let mut cfg = base_cfg.clone().design(L1DesignKind::Seesaw);
        cfg.seesaw_partitions = Some(partitions);
        cells.push((format!("redis/{partitions}p"), cfg));
    }
    cells
}

/// All five prose-ablation grids in one plan (insertion, ASID flush,
/// snoopy, area control, prefetch), labels disambiguated per ablation.
fn ablations_cells(instructions: u64) -> Vec<PlanCell> {
    let cfg64 = |workload: &str| {
        RunConfig::paper(workload)
            .l1_size(64)
            .frequency(Frequency::F1_33)
            .cpu(CpuKind::OutOfOrder)
            .design(L1DesignKind::Seesaw)
            .instructions(instructions)
    };
    let mut cells = Vec::new();
    for w in cloud_subset() {
        let name = w.name;
        // insertion_ablation
        cells.push((format!("{name}/4way"), cfg64(name)));
        let mut four_eight = cfg64(name);
        four_eight.insertion = InsertionPolicy::FourWayEightWay;
        cells.push((format!("{name}/4way-8way"), four_eight));
        // asid_flush_ablation
        let mut flushing = cfg64(name);
        flushing.context_switch_interval = Some(100_000);
        cells.push((format!("{name}/flushing"), flushing));
        let mut ideal = cfg64(name);
        ideal.context_switch_interval = None;
        cells.push((format!("{name}/ideal"), ideal));
        // snoopy_ablation
        for (snoopy, label) in [(false, "directory"), (true, "snoopy")] {
            let mut base_cfg = cfg64(name).design(L1DesignKind::BaselineVipt);
            base_cfg.snoopy = snoopy;
            cells.push((format!("{name}/{label}/base"), base_cfg));
            let mut seesaw_cfg = cfg64(name);
            seesaw_cfg.snoopy = snoopy;
            cells.push((format!("{name}/{label}/seesaw"), seesaw_cfg));
        }
        // area_control
        let base_cfg = cfg64(name).design(L1DesignKind::BaselineVipt);
        cells.push((format!("{name}/base"), base_cfg.clone()));
        let mut bigger_cfg = base_cfg;
        bigger_cfg.l1_tlb_4k_entries = Some(136);
        cells.push((format!("{name}/tlb136"), bigger_cfg));
        cells.push((format!("{name}/seesaw"), cfg64(name)));
        // prefetch_ablation
        for (degree, label) in [(None, "no-prefetch"), (Some(4usize), "prefetch4")] {
            let mut base_cfg = cfg64(name).design(L1DesignKind::BaselineVipt);
            base_cfg.prefetch_degree = degree;
            cells.push((format!("{name}/{label}/base"), base_cfg));
            let mut seesaw_cfg = cfg64(name);
            seesaw_cfg.prefetch_degree = degree;
            cells.push((format!("{name}/{label}/seesaw"), seesaw_cfg));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::fingerprint;

    #[test]
    fn every_registered_name_resolves_and_unknowns_do_not() {
        for name in plan_names() {
            let cells = plan_cells(name, 10_000).unwrap_or_else(|| panic!("{name} registered"));
            assert!(!cells.is_empty(), "{name} must produce cells");
        }
        assert!(plan_cells("fig1", 10_000).is_none());
        assert!(plan_cells("", 10_000).is_none());
    }

    #[test]
    fn grid_shapes_match_the_drivers() {
        let n = catalog().len();
        let cloud = cloud_subset().len();
        let expect = [
            ("fig7", n * SIZES_KB.len() * 2),
            ("fig8", Frequency::ALL.len() * SIZES_KB.len() * n * 2),
            ("fig9", Frequency::ALL.len() * SIZES_KB.len() * n * 2),
            ("fig10", 2 * Frequency::ALL.len() * SIZES_KB.len() * n * 2),
            ("fig11", n * 2),
            ("fig12", cloud * FIG12_MEMHOG.len() * 2),
            ("fig13", FIG13_TFT_ENTRIES.len() * 3 * n),
            // base + seesaw + 3 PIPT ways × {full, halved} TLB.
            ("fig14", Frequency::ALL.len() * n * (2 + 6)),
            ("fig15", cloud * 4),
            ("designs", DESIGN_LAB.len()),
            // Per workload: 1 synthetic + 2 protocols × 2 core counts,
            // each a base/seesaw pair.
            ("multicore", MULTICORE_WORKLOADS.len() * 5 * 2),
            (
                "scheduler",
                MEMHOG_LEVELS.len() * (1 + 3 * SQUASH_COSTS.len()),
            ),
            ("partitions", 4),
            // insertion 2 + asid 2 + snoopy 4 + area 3 + prefetch 4.
            ("ablations", cloud * 15),
        ];
        for (name, count) in expect {
            assert_eq!(
                plan_cells(name, 10_000).unwrap().len(),
                count,
                "{name} cell count"
            );
        }
    }

    #[test]
    fn registry_cells_fingerprint_like_the_drivers_configs() {
        // Spot-check one cell per representative plan against a config
        // built exactly as the driver builds it.
        let cells = plan_cells("fig7", 40_000).unwrap();
        let driver_cfg = runtime_cfg("redis", 64, Frequency::F1_33, CpuKind::OutOfOrder, 40_000)
            .design(L1DesignKind::Seesaw);
        let (label, cfg) = cells
            .iter()
            .find(|(l, _)| l == "redis/64KB/seesaw")
            .expect("fig7 label present");
        assert_eq!(label, "redis/64KB/seesaw");
        assert_eq!(fingerprint(cfg), fingerprint(&driver_cfg));

        let cells = plan_cells("scheduler", 40_000).unwrap();
        let mut driver_cfg = RunConfig::paper("redis")
            .l1_size(64)
            .frequency(Frequency::F1_33)
            .cpu(CpuKind::OutOfOrder)
            .memhog(60)
            .instructions(40_000)
            .design(L1DesignKind::Seesaw);
        driver_cfg.scheduler_hint = SchedulerHintPolicy::AlwaysSlow;
        driver_cfg.hit_time_squash_cycles = 12;
        let (_, cfg) = cells
            .iter()
            .find(|(l, _)| l == "redis/mh60/AlwaysSlow/sq12")
            .expect("scheduler label present");
        assert_eq!(fingerprint(cfg), fingerprint(&driver_cfg));
    }

    /// Runs the real driver, then the registry plan at the same budget,
    /// and asserts the registry saw only memo hits with exactly
    /// `distinct` configurations. Budgets are unique per call site, so
    /// a hit can only come from the driver's own cells (the fingerprint
    /// includes the instruction budget); zero misses plus matching
    /// distinct counts pins set equality between the two grids.
    fn assert_registry_matches_driver(
        name: &str,
        budget: u64,
        distinct: usize,
        driver: impl FnOnce(u64),
    ) {
        driver(budget);
        let mut plan = crate::runner::Plan::new();
        for (label, cfg) in plan_cells(name, budget).unwrap() {
            plan.push(label, cfg);
        }
        let run = plan.run().unwrap();
        assert_eq!(run.memo.misses, 0, "{name}: registry ⊆ driver");
        assert_eq!(run.memo.entries, distinct, "{name}: registry ⊇ driver");
    }

    #[test]
    fn partitions_registry_covers_the_driver_exactly() {
        assert_registry_matches_driver("partitions", 31_415, 4, |b| {
            crate::experiments::partition_ablation(b).unwrap();
        });
    }

    #[test]
    fn scheduler_registry_covers_the_driver_exactly() {
        // 2 memhog levels × (1 baseline + 3 policies × 3 squash costs).
        assert_registry_matches_driver("scheduler", 27_183, 20, |b| {
            crate::experiments::scheduler_ablation(b).unwrap();
        });
    }

    #[test]
    fn fig15_registry_covers_the_driver_exactly() {
        assert_registry_matches_driver("fig15", 14_142, cloud_subset().len() * 4, |b| {
            crate::experiments::fig15(b).unwrap();
        });
    }
}
