//! Figs. 7–9: runtime improvement of SEESAW over baseline VIPT.

use seesaw_workloads::catalog;

use crate::report::pct;
use crate::runner::Plan;
use crate::stats::Summary;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SimError, Table};

/// Cache sizes of the runtime studies.
pub const SIZES_KB: [u64; 3] = [32, 64, 128];

/// One Fig. 7 bar: a workload × cache size improvement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: &'static str,
    /// L1 capacity in KB.
    pub size_kb: u64,
    /// Percent runtime improvement of SEESAW over baseline VIPT.
    pub improvement_pct: f64,
}

/// One Fig. 8/9 bar: a frequency × size summary over all workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqSweepRow {
    /// Frequency label.
    pub freq: &'static str,
    /// L1 capacity in KB.
    pub size_kb: u64,
    /// Mean/min/max improvement across all workloads.
    pub summary: Summary,
}

/// The shared baseline configuration of the runtime studies.
pub(crate) fn runtime_cfg(
    workload: &str,
    size_kb: u64,
    freq: Frequency,
    cpu: CpuKind,
    instructions: u64,
) -> RunConfig {
    RunConfig::paper(workload)
        .l1_size(size_kb)
        .frequency(freq)
        .cpu(cpu)
        .instructions(instructions)
}

/// Runs baseline and SEESAW for one configuration and returns the
/// runtime improvement (spot-check helper for the test suites; the
/// figure drivers batch whole grids instead).
#[cfg(test)]
pub(crate) fn improvement(
    workload: &str,
    size_kb: u64,
    freq: Frequency,
    cpu: CpuKind,
    instructions: u64,
) -> Result<f64, SimError> {
    let base_cfg = runtime_cfg(workload, size_kb, freq, cpu, instructions);
    let mut plan = Plan::new();
    let base = plan.push(format!("{workload}/base"), base_cfg.clone());
    let seesaw = plan.push(
        format!("{workload}/seesaw"),
        base_cfg.design(L1DesignKind::Seesaw),
    );
    let results = plan.run()?;
    Ok(results[seesaw].runtime_improvement_pct(&results[base]))
}

/// Fig. 7: per-workload runtime improvement on the out-of-order core at
/// 1.33 GHz, for 32/64/128 KB caches. The whole grid is one [`Plan`]:
/// every cell runs concurrently and the baselines are shared with any
/// other figure at the same geometry.
pub fn fig7(instructions: u64) -> Result<Vec<Fig7Row>, SimError> {
    let mut plan = Plan::new();
    let mut cells = Vec::new();
    for spec in catalog() {
        for &size_kb in &SIZES_KB {
            let base_cfg = runtime_cfg(
                spec.name,
                size_kb,
                Frequency::F1_33,
                CpuKind::OutOfOrder,
                instructions,
            );
            let base = plan.push(format!("{}/{}KB/base", spec.name, size_kb), base_cfg.clone());
            let seesaw = plan.push(
                format!("{}/{}KB/seesaw", spec.name, size_kb),
                base_cfg.design(L1DesignKind::Seesaw),
            );
            cells.push((spec.name, size_kb, base, seesaw));
        }
    }
    let results = plan.run()?;
    Ok(cells
        .into_iter()
        .map(|(workload, size_kb, base, seesaw)| Fig7Row {
            workload,
            size_kb,
            improvement_pct: results[seesaw].runtime_improvement_pct(&results[base]),
        })
        .collect())
}

/// Fig. 8: frequency sweep on the out-of-order core (avg/min/max over all
/// workloads per size × frequency).
pub fn fig8(instructions: u64) -> Result<Vec<FreqSweepRow>, SimError> {
    freq_sweep(CpuKind::OutOfOrder, instructions)
}

/// Fig. 9: the same sweep on the in-order core (gains are higher).
pub fn fig9(instructions: u64) -> Result<Vec<FreqSweepRow>, SimError> {
    freq_sweep(CpuKind::InOrder, instructions)
}

fn freq_sweep(cpu: CpuKind, instructions: u64) -> Result<Vec<FreqSweepRow>, SimError> {
    let workloads = catalog();
    let mut plan = Plan::new();
    let mut cells = Vec::new();
    for freq in Frequency::ALL {
        for &size_kb in &SIZES_KB {
            let pairs: Vec<(usize, usize)> = workloads
                .iter()
                .map(|w| {
                    let base_cfg = runtime_cfg(w.name, size_kb, freq, cpu, instructions);
                    let base =
                        plan.push(format!("{}/{}KB/base", w.name, size_kb), base_cfg.clone());
                    let seesaw = plan.push(
                        format!("{}/{}KB/seesaw", w.name, size_kb),
                        base_cfg.design(L1DesignKind::Seesaw),
                    );
                    (base, seesaw)
                })
                .collect();
            cells.push((freq, size_kb, pairs));
        }
    }
    let results = plan.run()?;
    Ok(cells
        .into_iter()
        .map(|(freq, size_kb, pairs)| {
            let improvements: Vec<f64> = pairs
                .into_iter()
                .map(|(base, seesaw)| results[seesaw].runtime_improvement_pct(&results[base]))
                .collect();
            FreqSweepRow {
                freq: freq.label(),
                size_kb,
                summary: Summary::of(&improvements),
            }
        })
        .collect())
}

/// Renders Fig. 7 rows (workloads × sizes).
pub fn fig7_table(rows: &[Fig7Row]) -> Table {
    let mut table = Table::new(vec!["workload", "32KB", "64KB", "128KB"]);
    for spec in catalog() {
        let cell = |size: u64| {
            rows.iter()
                .find(|r| r.workload == spec.name && r.size_kb == size)
                .map(|r| pct(r.improvement_pct))
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![spec.name.into(), cell(32), cell(64), cell(128)]);
    }
    table
}

/// Renders Fig. 8/9 rows.
pub fn freq_sweep_table(rows: &[FreqSweepRow]) -> Table {
    let mut table = Table::new(vec!["freq", "size", "avg", "min", "max"]);
    for r in rows {
        table.row(vec![
            r.freq.into(),
            format!("{}KB", r.size_kb),
            pct(r.summary.mean),
            pct(r.summary.min),
            pct(r.summary.max),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 120_000;

    #[test]
    fn every_workload_improves_at_64kb() {
        // Spot-check a diverse trio; "Every single one of our workloads
        // benefits from SEESAW" (§VI-A). The full 16 run in the binary.
        for name in ["redis", "astar", "g500"] {
            let imp = improvement(name, 64, Frequency::F1_33, CpuKind::OutOfOrder, QUICK).unwrap();
            assert!(imp > 0.0, "{name} regressed: {imp:.2}%");
        }
    }

    #[test]
    fn larger_caches_improve_more() {
        let small = improvement("mongo", 32, Frequency::F1_33, CpuKind::OutOfOrder, QUICK).unwrap();
        let large = improvement("mongo", 128, Frequency::F1_33, CpuKind::OutOfOrder, QUICK).unwrap();
        assert!(
            large > small,
            "128KB ({large:.2}%) should beat 32KB ({small:.2}%)"
        );
    }

    #[test]
    fn improvements_are_in_the_papers_band() {
        // Paper Fig. 7: averages of 5–11% across sizes, bars up to ~17%.
        let imp = improvement("redis", 64, Frequency::F1_33, CpuKind::OutOfOrder, QUICK).unwrap();
        assert!((0.5..25.0).contains(&imp), "got {imp:.2}%");
    }

    #[test]
    fn tables_render() {
        let rows = vec![Fig7Row {
            workload: "astar",
            size_kb: 32,
            improvement_pct: 4.0,
        }];
        assert_eq!(fig7_table(&rows).len(), 16);
        let rows = vec![FreqSweepRow {
            freq: "1.33GHz",
            size_kb: 32,
            summary: Summary::of(&[1.0, 2.0]),
        }];
        assert_eq!(freq_sweep_table(&rows).len(), 1);
    }
}
