//! Fig. 15: way prediction (WP) versus SEESAW versus the combination,
//! on the cloud workloads (64 KB L1 at 1.33 GHz).

use seesaw_workloads::cloud_subset;

use crate::report::pct;
use crate::runner::Plan;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SimError, Table};

/// One workload's three-design comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Workload name.
    pub workload: &'static str,
    /// WP-only runtime improvement (often negative).
    pub wp_perf: f64,
    /// WP-only energy savings.
    pub wp_energy: f64,
    /// SEESAW runtime improvement.
    pub seesaw_perf: f64,
    /// SEESAW energy savings.
    pub seesaw_energy: f64,
    /// WP+SEESAW runtime improvement.
    pub combined_perf: f64,
    /// WP+SEESAW energy savings.
    pub combined_energy: f64,
    /// The way predictor's accuracy in the WP-only run.
    pub wp_accuracy: f64,
}

/// Runs the three designs against the shared baseline, all four cells per
/// workload in one plan.
pub fn fig15(instructions: u64) -> Result<Vec<Fig15Row>, SimError> {
    let workloads = cloud_subset();
    let mut plan = Plan::new();
    let cells: Vec<[usize; 4]> = workloads
        .iter()
        .map(|w| {
            let base_cfg = RunConfig::paper(w.name)
                .l1_size(64)
                .frequency(Frequency::F1_33)
                .cpu(CpuKind::OutOfOrder)
                .instructions(instructions);
            let base = plan.push(format!("{}/base", w.name), base_cfg.clone());
            let mut queue = |label: &str, design| {
                plan.push(
                    format!("{}/{label}", w.name),
                    base_cfg.clone().design(design),
                )
            };
            let wp = queue("wp", L1DesignKind::BaselineWithWayPrediction);
            let seesaw = queue("seesaw", L1DesignKind::Seesaw);
            let combined = queue("wp+seesaw", L1DesignKind::SeesawWithWayPrediction);
            [base, wp, seesaw, combined]
        })
        .collect();
    let results = plan.run()?;
    Ok(workloads
        .iter()
        .zip(cells)
        .map(|(w, [base, wp, seesaw, combined])| {
            let base = &results[base];
            let wp = &results[wp];
            let seesaw = &results[seesaw];
            let combined = &results[combined];
            Fig15Row {
                workload: w.name,
                wp_perf: wp.runtime_improvement_pct(base),
                wp_energy: wp.energy_savings_pct(base),
                seesaw_perf: seesaw.runtime_improvement_pct(base),
                seesaw_energy: seesaw.energy_savings_pct(base),
                combined_perf: combined.runtime_improvement_pct(base),
                combined_energy: combined.energy_savings_pct(base),
                wp_accuracy: wp.way_prediction_accuracy.unwrap_or(0.0),
            }
        })
        .collect())
}

/// Renders the rows.
pub fn fig15_table(rows: &[Fig15Row]) -> Table {
    let mut table = Table::new(vec![
        "workload",
        "WP perf",
        "WP energy",
        "SEESAW perf",
        "SEESAW energy",
        "WP+SEESAW perf",
        "WP+SEESAW energy",
        "WP accuracy",
    ]);
    for r in rows {
        table.row(vec![
            r.workload.into(),
            pct(r.wp_perf),
            pct(r.wp_energy),
            pct(r.seesaw_perf),
            pct(r.seesaw_energy),
            pct(r.combined_perf),
            pct(r.combined_energy),
            pct(r.wp_accuracy * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(workload: &str) -> Fig15Row {
        let mut rows = fig15(100_000).unwrap();
        // fig15 runs all eight; pick the requested one from a dedicated
        // quick run instead to keep the test fast.
        rows.retain(|r| r.workload == workload);
        rows.pop().unwrap_or_else(|| panic!("{workload} in cloud subset"))
    }

    #[test]
    fn wp_degrades_perf_on_poor_locality_but_seesaw_never_does() {
        // Paper: "the way predictor alone degrades performance … when MRU
        // prediction suffers because workloads use pointer-chasing memory
        // access patterns (e.g., graph500 and olio)".
        let r = one("g500");
        assert!(r.wp_perf <= 0.5, "WP should not speed up g500: {:.2}%", r.wp_perf);
        assert!(r.seesaw_perf > 0.0, "SEESAW never degrades: {:.2}%", r.seesaw_perf);
        assert!(
            r.seesaw_energy > r.wp_energy,
            "SEESAW energy ({:.2}%) should beat WP's ({:.2}%) when prediction is poor",
            r.seesaw_energy,
            r.wp_energy
        );
    }

    #[test]
    fn wp_saves_energy_when_prediction_is_accurate() {
        // nutch's prediction accuracy is high ("over 85%" in the paper),
        // so WP alone is an energy win there.
        let r = one("nutch");
        assert!(r.wp_accuracy > 0.5, "nutch WP accuracy {:.2}", r.wp_accuracy);
        assert!(r.wp_energy > 0.0, "WP must save energy on nutch: {:.2}%", r.wp_energy);
    }

    #[test]
    fn combination_saves_the_most_energy() {
        let r = one("redis");
        assert!(
            r.combined_energy >= r.seesaw_energy - 0.5,
            "WP+SEESAW ({:.2}%) should be at least SEESAW ({:.2}%)",
            r.combined_energy,
            r.seesaw_energy
        );
        assert!(
            r.combined_energy > r.wp_energy,
            "WP+SEESAW ({:.2}%) should beat WP alone ({:.2}%)",
            r.combined_energy,
            r.wp_energy
        );
    }

    #[test]
    fn table_renders() {
        let rows = vec![Fig15Row {
            workload: "olio",
            wp_perf: -2.0,
            wp_energy: 5.0,
            seesaw_perf: 6.0,
            seesaw_energy: 10.0,
            combined_perf: 5.0,
            combined_energy: 13.0,
            wp_accuracy: 0.6,
        }];
        assert!(fig15_table(&rows).to_string().contains("olio"));
    }
}
