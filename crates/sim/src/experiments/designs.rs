//! The competing-design lab: every L1 design the simulator models,
//! head-to-head on one workload under identical conditions.
//!
//! Where the paper's figures each isolate one comparison (baseline vs
//! SEESAW, WP vs WP+SEESAW, PIPT points), this driver lines up the
//! whole design space — conventional VIPT, SEESAW with and without MRU
//! way prediction, VESPA's TFT-free always-fast lookup, and a
//! Zen2-style µtag predictor on the baseline — and reports the three
//! quantities a design review actually argues about: MPKI, energy, and
//! measured average hit latency.

use crate::report::{num, pct};
use crate::runner::Plan;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, RunResult, SimError, Table};

/// The head-to-head roster: the paper's designs plus the alternatives
/// from related work, with their display names. The baseline comes
/// first; every relative column in [`DesignRow`] is measured against it.
pub const DESIGN_LAB: [(&str, L1DesignKind); 5] = [
    ("baseline", L1DesignKind::BaselineVipt),
    ("seesaw", L1DesignKind::Seesaw),
    ("seesaw+mru", L1DesignKind::SeesawWithWayPrediction),
    ("vespa", L1DesignKind::Vespa),
    ("baseline+utag", L1DesignKind::BaselineMicroTag),
];

/// Every design kind the simulator can build, for exhaustive smoke
/// coverage (`scripts/check.sh designs_smoke`): [`DESIGN_LAB`] plus the
/// variants the head-to-head leaves out.
pub fn all_design_kinds() -> Vec<(&'static str, L1DesignKind)> {
    let mut kinds: Vec<(&str, L1DesignKind)> = DESIGN_LAB.to_vec();
    kinds.push(("baseline+mru", L1DesignKind::BaselineWithWayPrediction));
    kinds.push(("pipt8", L1DesignKind::Pipt { ways: 8 }));
    kinds.push(("vivt8", L1DesignKind::Vivt { ways: 8 }));
    kinds
}

/// One design's scorecard against the shared baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignRow {
    /// Display name from [`DESIGN_LAB`].
    pub design: &'static str,
    /// L1 misses per kilo-instruction.
    pub mpki: f64,
    /// Runtime improvement over the baseline (positive = faster; zero
    /// for the baseline row itself).
    pub perf: f64,
    /// Memory-hierarchy energy savings over the baseline.
    pub energy: f64,
    /// Measured mean load-to-use latency over L1 hits, in cycles
    /// (`l1.avg_hit_latency_cycles`).
    pub hit_latency: f64,
    /// Mean ways probed per demand access (the dynamic-energy driver).
    pub ways_per_access: f64,
    /// Way-predictor accuracy, for the designs that carry one.
    pub wp_accuracy: Option<f64>,
}

/// Runs the whole [`DESIGN_LAB`] roster on one workload (64 KB L1 at
/// 1.33 GHz on the out-of-order core, Fig. 15's conditions) in a single
/// plan and scores every design against the shared baseline.
pub fn designs(workload: &'static str, instructions: u64) -> Result<Vec<DesignRow>, SimError> {
    let base_cfg = RunConfig::paper(workload)
        .l1_size(64)
        .frequency(Frequency::F1_33)
        .cpu(CpuKind::OutOfOrder)
        .instructions(instructions);
    let mut plan = Plan::new();
    let cells: Vec<usize> = DESIGN_LAB
        .iter()
        .map(|(name, kind)| {
            plan.push(
                format!("{workload}/{name}"),
                base_cfg.clone().design(*kind),
            )
        })
        .collect();
    let results = plan.run()?;
    let base = &results[cells[0]];
    Ok(DESIGN_LAB
        .iter()
        .zip(cells.iter())
        .map(|((name, _), &cell)| {
            let r = &results[cell];
            DesignRow {
                design: name,
                mpki: r.l1_mpki,
                perf: r.runtime_improvement_pct(base),
                energy: r.energy_savings_pct(base),
                hit_latency: r.metrics.get_f64("l1.avg_hit_latency_cycles").unwrap_or(0.0),
                ways_per_access: {
                    let accesses = r.l1.hits + r.l1.misses;
                    if accesses == 0 {
                        0.0
                    } else {
                        r.l1.ways_probed as f64 / accesses as f64
                    }
                },
                wp_accuracy: r.way_prediction_accuracy,
            }
        })
        .collect())
}

/// Renders the rows.
pub fn designs_table(rows: &[DesignRow]) -> Table {
    let mut table = Table::new(vec![
        "design",
        "MPKI",
        "perf vs base",
        "energy vs base",
        "hit latency (cyc)",
        "ways/access",
        "WP accuracy",
    ]);
    for r in rows {
        table.row(vec![
            r.design.into(),
            num(r.mpki),
            pct(r.perf),
            pct(r.energy),
            num(r.hit_latency),
            num(r.ways_per_access),
            r.wp_accuracy.map_or_else(|| "-".into(), |a| pct(a * 100.0)),
        ]);
    }
    table
}

/// A stable digest of one run's architecturally visible outcome, for
/// the determinism smoke: the same configuration must fingerprint
/// identically across processes, and distinct designs must not collide
/// (they make different timing and probe decisions on the same
/// stream). FNV-1a over the counters that define the run.
pub fn design_fingerprint(r: &RunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(r.totals.instructions);
    mix(r.totals.cycles);
    mix(r.l1.hits);
    mix(r.l1.misses);
    mix(r.l1.ways_probed);
    mix(r.walks);
    mix(r.energy.total_nj().to_bits());
    mix(r.metrics.get_f64("l1.avg_hit_latency_cycles").unwrap_or(0.0).to_bits());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;

    fn quick(kind: L1DesignKind) -> RunResult {
        let cfg = RunConfig::quick("redis").design(kind);
        System::build(&cfg).unwrap().run().unwrap()
    }

    #[test]
    fn lab_covers_the_required_roster() {
        let names: Vec<&str> = DESIGN_LAB.iter().map(|(n, _)| *n).collect();
        for required in ["baseline", "seesaw", "seesaw+mru", "vespa", "baseline+utag"] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert!(all_design_kinds().len() > DESIGN_LAB.len());
    }

    #[test]
    fn head_to_head_scores_every_design() {
        let rows = designs("redis", 120_000).unwrap();
        assert_eq!(rows.len(), DESIGN_LAB.len());
        let base = &rows[0];
        assert_eq!(base.perf, 0.0);
        assert_eq!(base.energy, 0.0);
        for r in &rows {
            assert!(r.mpki >= 0.0, "{}: mpki {}", r.design, r.mpki);
            assert!(r.hit_latency > 0.0, "{}: hit latency {}", r.design, r.hit_latency);
            assert!(
                r.ways_per_access > 0.0,
                "{}: ways/access {}",
                r.design,
                r.ways_per_access
            );
        }
        // The predictors carry accuracies; the plain designs do not.
        let by_name = |n: &str| rows.iter().find(|r| r.design == n).unwrap();
        assert!(by_name("seesaw+mru").wp_accuracy.is_some());
        assert!(by_name("baseline+utag").wp_accuracy.is_some());
        assert!(by_name("baseline").wp_accuracy.is_none());
        assert!(by_name("vespa").wp_accuracy.is_none());
        // A µtag mispredict costs a second round, so its mean hit
        // latency cannot undercut the always-full-probe baseline.
        assert!(by_name("baseline+utag").hit_latency >= by_name("baseline").hit_latency - 1e-9);
        assert!(designs_table(&rows).to_string().contains("vespa"));
    }

    #[test]
    fn fingerprints_are_stable_and_design_sensitive() {
        let a = design_fingerprint(&quick(L1DesignKind::Vespa));
        let b = design_fingerprint(&quick(L1DesignKind::Vespa));
        assert_eq!(a, b, "same design + config must fingerprint identically");
        let c = design_fingerprint(&quick(L1DesignKind::BaselineMicroTag));
        assert_ne!(a, c, "distinct designs must not collide");
    }
}
