//! Fig. 3: fraction of the memory footprint backed by 2 MB superpages as
//! memhog fragments physical memory.

use seesaw_workloads::catalog;

use crate::report::pct;
use crate::runner::parallel_map;
use crate::{RunConfig, SimError, System, Table};

/// memhog pressures of Fig. 3.
pub const FIG3_MEMHOG: [u32; 4] = [0, 40, 60, 80];

/// Coverage of one workload across the fragmentation levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: &'static str,
    /// Coverage (0–1) at each of [`FIG3_MEMHOG`]'s pressures.
    pub coverage: [f64; 4],
}

/// Runs the allocation study: no trace simulation required — coverage is
/// determined at footprint-population time, so the cells are plain
/// build-only tasks on the worker pool rather than [`crate::Plan`] runs.
pub fn fig3() -> Result<Vec<Fig3Row>, SimError> {
    let workloads = catalog();
    let mut cells = Vec::new();
    for spec in &workloads {
        for &pct in &FIG3_MEMHOG {
            cells.push((spec.name, pct));
        }
    }
    let coverages = parallel_map(&cells, |&(name, pct)| {
        let config = RunConfig::paper(name).memhog(pct);
        Ok::<f64, SimError>(System::build(&config)?.superpage_coverage())
    });

    let mut rows = Vec::new();
    let mut outcomes = coverages.into_iter();
    for w in &workloads {
        let mut coverage = [0.0; 4];
        for slot in coverage.iter_mut() {
            *slot = outcomes.next().expect("one coverage per cell")?;
        }
        rows.push(Fig3Row {
            workload: w.name,
            coverage,
        });
    }
    Ok(rows)
}

/// Renders the rows.
pub fn fig3_table(rows: &[Fig3Row]) -> Table {
    let mut headers = vec!["workload".to_string()];
    headers.extend(FIG3_MEMHOG.iter().map(|p| format!("memhog({p}%)")));
    let mut table = Table::new(headers);
    for row in rows {
        let mut cells = vec![row.workload.to_string()];
        cells.extend(row.coverage.iter().map(|c| pct(c * 100.0)));
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_high_unfragmented_and_collapses_at_80() {
        // A spot check on three workloads (the full sweep runs in the
        // fig3 binary). Paper: 65%+ at low fragmentation, struggling at
        // 80%+, but "even in the extreme cases, some superpages are
        // allocated".
        for name in ["astar", "redis", "g500"] {
            let cov = |pct: u32| {
                System::build(&RunConfig::paper(name).memhog(pct))
                    .unwrap()
                    .superpage_coverage()
            };
            let c0 = cov(0);
            let c80 = cov(80);
            assert!(c0 > 0.65, "{name}: memhog(0) coverage {c0}");
            assert!(c80 < c0, "{name}: coverage must fall with fragmentation");
        }
    }

    #[test]
    fn table_renders_all_workloads() {
        let rows = vec![Fig3Row {
            workload: "redis",
            coverage: [0.9, 0.8, 0.6, 0.2],
        }];
        let t = fig3_table(&rows);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("memhog(40%)"));
    }
}
