//! Fig. 12: SEESAW's benefits under increasing memory fragmentation
//! (memhog at 0/30/60 % of memory; 64 KB L1 at 1.33 GHz).

use seesaw_workloads::fig12_subset;

use crate::report::pct;
use crate::runner::Plan;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SimError, Table};

/// memhog pressures of Fig. 12.
pub const FIG12_MEMHOG: [u32; 3] = [0, 30, 60];

/// One workload × fragmentation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Workload name.
    pub workload: &'static str,
    /// memhog percent.
    pub memhog: u32,
    /// Percent runtime improvement over the baseline at the same
    /// fragmentation.
    pub perf_pct: f64,
    /// Percent memory-hierarchy energy saved.
    pub energy_pct: f64,
    /// Superpage coverage the OS achieved at this pressure.
    pub coverage: f64,
}

/// Runs the fragmentation sweep as one plan (workload × memhog ×
/// {baseline, SEESAW}).
pub fn fig12(instructions: u64) -> Result<Vec<Fig12Row>, SimError> {
    let mut plan = Plan::new();
    let mut cells = Vec::new();
    for spec in fig12_subset() {
        for &memhog in &FIG12_MEMHOG {
            let base_cfg = RunConfig::paper(spec.name)
                .l1_size(64)
                .frequency(Frequency::F1_33)
                .cpu(CpuKind::OutOfOrder)
                .memhog(memhog)
                .instructions(instructions);
            let base = plan.push(format!("{}/mh{}/base", spec.name, memhog), base_cfg.clone());
            let seesaw = plan.push(
                format!("{}/mh{}/seesaw", spec.name, memhog),
                base_cfg.design(L1DesignKind::Seesaw),
            );
            cells.push((spec.name, memhog, base, seesaw));
        }
    }
    let results = plan.run()?;
    Ok(cells
        .into_iter()
        .map(|(workload, memhog, base, seesaw)| Fig12Row {
            workload,
            memhog,
            perf_pct: results[seesaw].runtime_improvement_pct(&results[base]),
            energy_pct: results[seesaw].energy_savings_pct(&results[base]),
            coverage: results[seesaw].superpage_coverage,
        })
        .collect())
}

/// Renders the rows grouped like the paper's figure (mh0/mh30/mh60 per
/// workload).
pub fn fig12_table(rows: &[Fig12Row]) -> Table {
    let mut table = Table::new(vec!["workload", "memhog", "perf", "energy", "coverage"]);
    for r in rows {
        table.row(vec![
            r.workload.into(),
            format!("mh{}", r.memhog),
            pct(r.perf_pct),
            pct(r.energy_pct),
            pct(r.coverage * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;

    #[test]
    fn benefits_shrink_but_survive_fragmentation() {
        // Paper: benefits "decrease but still remain in the 4-6% range in
        // the presence of heavy fragmentation (i.e., memhog of 60%)".
        let run = |memhog: u32| {
            let cfg = RunConfig::quick("redis")
                .l1_size(64)
                .memhog(memhog);
            let base = System::build(&cfg).unwrap().run().unwrap();
            let seesaw = System::build(&cfg.clone().design(L1DesignKind::Seesaw))
                .unwrap()
                .run()
                .unwrap();
            (
                seesaw.runtime_improvement_pct(&base),
                seesaw.superpage_coverage,
            )
        };
        let (perf0, cov0) = run(0);
        let (perf60, cov60) = run(60);
        assert!(cov60 < cov0, "fragmentation must reduce coverage");
        assert!(perf60 > 0.0, "benefit must survive at mh60: {perf60:.2}%");
        assert!(
            perf60 <= perf0 + 1.0,
            "benefit should shrink: {perf0:.2}% → {perf60:.2}%"
        );
    }

    #[test]
    fn table_renders() {
        let rows = vec![Fig12Row {
            workload: "olio",
            memhog: 30,
            perf_pct: 5.0,
            energy_pct: 8.0,
            coverage: 0.7,
        }];
        let t = fig12_table(&rows);
        assert!(t.to_string().contains("mh30"));
    }
}
