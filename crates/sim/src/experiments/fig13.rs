//! Fig. 13: TFT effectiveness — the percentage of superpage accesses the
//! TFT fails to identify, for 12/16/20-entry TFTs and 32–128 KB caches,
//! split by whether the access ultimately hit or missed in the L1.

use seesaw_workloads::catalog;

use crate::report::pct;
use crate::runner::Plan;
use crate::stats::Summary;
use crate::{L1DesignKind, RunConfig, SimError, Table};

/// TFT sizes swept by Fig. 13.
pub const FIG13_TFT_ENTRIES: [usize; 3] = [12, 16, 20];

/// One TFT-size × cache-size cell, summarized over all workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// TFT entries.
    pub tft_entries: usize,
    /// L1 capacity in KB.
    pub size_kb: u64,
    /// Percent of superpage accesses missed by the TFT that were L1
    /// hits (the blue bars — these pay real latency).
    pub miss_l1_hit: Summary,
    /// Percent of superpage accesses missed by the TFT that were also L1
    /// misses (the red bars — hidden under the L2 trip).
    pub miss_l1_miss: Summary,
}

/// Runs the TFT sweep as one plan over the full
/// TFT-size × cache-size × workload grid.
pub fn fig13(instructions: u64) -> Result<Vec<Fig13Row>, SimError> {
    let workloads = catalog();
    let mut plan = Plan::new();
    let mut cells = Vec::new();
    for &tft_entries in &FIG13_TFT_ENTRIES {
        for &size_kb in &[32u64, 64, 128] {
            let indices: Vec<usize> = workloads
                .iter()
                .map(|w| {
                    let mut cfg = RunConfig::paper(w.name)
                        .l1_size(size_kb)
                        .design(L1DesignKind::Seesaw)
                        .instructions(instructions);
                    cfg.tft_entries = tft_entries;
                    plan.push(format!("{}/tft{}/{}KB", w.name, tft_entries, size_kb), cfg)
                })
                .collect();
            cells.push((tft_entries, size_kb, indices));
        }
    }
    let results = plan.run()?;
    let mut rows = Vec::new();
    for (tft_entries, size_kb, indices) in cells {
        {
            let mut hit_fracs = Vec::new();
            let mut miss_fracs = Vec::new();
            for idx in indices {
                let s = results[idx].seesaw;
                let supers = s.super_tft_hit_cache_hit
                    + s.super_tft_hit_cache_miss
                    + s.super_tft_miss;
                if supers == 0 {
                    continue;
                }
                let miss_l1_miss = s.super_tft_miss_l1_miss as f64 / supers as f64;
                let miss_l1_hit =
                    (s.super_tft_miss - s.super_tft_miss_l1_miss) as f64 / supers as f64;
                hit_fracs.push(miss_l1_hit * 100.0);
                miss_fracs.push(miss_l1_miss * 100.0);
            }
            rows.push(Fig13Row {
                tft_entries,
                size_kb,
                miss_l1_hit: Summary::of(&hit_fracs),
                miss_l1_miss: Summary::of(&miss_fracs),
            });
        }
    }
    Ok(rows)
}

/// Renders the rows.
pub fn fig13_table(rows: &[Fig13Row]) -> Table {
    let mut table = Table::new(vec![
        "TFT", "size", "L1-hit avg", "L1-hit max", "L1-miss avg", "L1-miss max", "total avg",
    ]);
    for r in rows {
        table.row(vec![
            format!("{}-entry", r.tft_entries),
            format!("{}KB", r.size_kb),
            pct(r.miss_l1_hit.mean),
            pct(r.miss_l1_hit.max),
            pct(r.miss_l1_miss.mean),
            pct(r.miss_l1_miss.max),
            pct(r.miss_l1_hit.mean + r.miss_l1_miss.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuKind, Frequency, System};

    fn tft_miss_fraction(workload: &str, tft_entries: usize) -> f64 {
        let mut cfg = RunConfig::quick(workload)
            .l1_size(64)
            .frequency(Frequency::F1_33)
            .cpu(CpuKind::OutOfOrder)
            .design(L1DesignKind::Seesaw);
        cfg.tft_entries = tft_entries;
        System::build(&cfg)
            .unwrap()
            .run()
            .unwrap()
            .seesaw
            .tft_miss_fraction_of_super()
    }

    #[test]
    fn sixteen_entries_keep_misses_low() {
        // Paper: "a TFT size of 16-entry drives miss rates to under 10%
        // even in the worst case". The bound carries a small margin: the
        // exact fraction depends on the generated reference stream, and
        // gups (uniform random access, the worst case) sits right at the
        // knee.
        for name in ["redis", "astar", "gups"] {
            let f = tft_miss_fraction(name, 16);
            assert!(f < 0.12, "{name}: TFT miss fraction {f:.3}");
        }
    }

    #[test]
    fn larger_tfts_do_not_miss_meaningfully_more() {
        // Modulo hashing means a bigger direct-mapped table has a
        // *different* conflict set, not a strict superset — the paper
        // itself found 20 entries "does not yield much better prediction
        // rates" than 16. Require approximate monotonicity.
        let f12 = tft_miss_fraction("g500", 12);
        let f20 = tft_miss_fraction("g500", 20);
        assert!(
            f20 <= f12 + 0.02,
            "20-entry ({f20:.3}) vs 12-entry ({f12:.3})"
        );
    }

    #[test]
    fn table_renders() {
        let rows = vec![Fig13Row {
            tft_entries: 16,
            size_kb: 64,
            miss_l1_hit: Summary::of(&[1.0]),
            miss_l1_miss: Summary::of(&[3.0]),
        }];
        assert!(fig13_table(&rows).to_string().contains("16-entry"));
    }
}
