//! Ablations the paper reports in prose: the insertion-policy choice
//! (§IV-B1), the decision to skip TFT ASID tags (§IV-C3), snoopy-vs-
//! directory coherence (§VI-B), and the area-equivalent-baseline control
//! (§VI-A).

use seesaw_core::InsertionPolicy;
use seesaw_workloads::cloud_subset;

use crate::report::pct;
use crate::runner::Plan;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SimError, Table};

/// One ablation data point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Workload name.
    pub workload: &'static str,
    /// The quantity being compared (percent; meaning depends on the
    /// ablation).
    pub value_a: f64,
    /// The comparison value.
    pub value_b: f64,
}

fn cfg64(workload: &str, instructions: u64) -> RunConfig {
    RunConfig::paper(workload)
        .l1_size(64)
        .frequency(Frequency::F1_33)
        .cpu(CpuKind::OutOfOrder)
        .design(L1DesignKind::Seesaw)
        .instructions(instructions)
}

/// Queues one cell per workload from `make` (which may queue several
/// plan cells and must return their indices), runs the plan, and maps
/// each workload's indices to an [`AblationRow`] through `row`.
fn ablation<const N: usize>(
    make: impl Fn(&mut Plan, &'static str) -> [usize; N],
    row: impl Fn([&crate::RunResult; N]) -> (f64, f64),
) -> Result<Vec<AblationRow>, SimError> {
    let workloads = cloud_subset();
    let mut plan = Plan::new();
    let cells: Vec<[usize; N]> = workloads
        .iter()
        .map(|w| make(&mut plan, w.name))
        .collect();
    let results = plan.run()?;
    Ok(workloads
        .iter()
        .zip(cells)
        .map(|(w, indices)| {
            let (value_a, value_b) = row(indices.map(|i| &results[i]));
            AblationRow {
                workload: w.name,
                value_a,
                value_b,
            }
        })
        .collect())
}

/// §IV-B1: `4way` vs `4way-8way` insertion. The paper saw "only a 1%
/// difference drop in hit rate with the 4way policy". Returns hit rates
/// (percent) as `(four_way, four_eight_way)`.
pub fn insertion_ablation(instructions: u64) -> Result<Vec<AblationRow>, SimError> {
    ablation(
        |plan, name| {
            let four = plan.push(format!("{name}/4way"), cfg64(name, instructions));
            let mut cfg = cfg64(name, instructions);
            cfg.insertion = InsertionPolicy::FourWayEightWay;
            let four_eight = plan.push(format!("{name}/4way-8way"), cfg);
            [four, four_eight]
        },
        |[four, four_eight]| {
            (
                (1.0 - four.l1.miss_rate()) * 100.0,
                (1.0 - four_eight.l1.miss_rate()) * 100.0,
            )
        },
    )
}

/// §IV-C3: TFT flushing on context switches (the no-ASID design) versus
/// an ideal never-flushed TFT. The paper measured the flush cost at under
/// 1 % of performance. Returns cycles as `(flushing, ideal)` normalized
/// to the ideal (percent).
pub fn asid_flush_ablation(instructions: u64) -> Result<Vec<AblationRow>, SimError> {
    ablation(
        |plan, name| {
            // Aggressive switching: every 100k instructions.
            let mut flushing_cfg = cfg64(name, instructions);
            flushing_cfg.context_switch_interval = Some(100_000);
            let flushing = plan.push(format!("{name}/flushing"), flushing_cfg);
            let mut ideal_cfg = cfg64(name, instructions);
            ideal_cfg.context_switch_interval = None;
            let ideal = plan.push(format!("{name}/ideal"), ideal_cfg);
            [flushing, ideal]
        },
        |[flushing, ideal]| {
            (
                100.0 * flushing.totals.cycles as f64 / ideal.totals.cycles as f64,
                100.0,
            )
        },
    )
}

/// §VI-B: snoopy coherence amplifies probe traffic, so SEESAW's energy
/// savings grow by "an additional 2-5%" for multithreaded workloads.
/// Returns energy savings (percent) as `(directory, snoopy)`.
pub fn snoopy_ablation(instructions: u64) -> Result<Vec<AblationRow>, SimError> {
    ablation(
        |plan, name| {
            let mut queue = |snoopy: bool, label: &str| {
                let mut base_cfg = cfg64(name, instructions).design(L1DesignKind::BaselineVipt);
                base_cfg.snoopy = snoopy;
                let mut seesaw_cfg = cfg64(name, instructions);
                seesaw_cfg.snoopy = snoopy;
                [
                    plan.push(format!("{name}/{label}/base"), base_cfg),
                    plan.push(format!("{name}/{label}/seesaw"), seesaw_cfg),
                ]
            };
            let [dir_base, dir_seesaw] = queue(false, "directory");
            let [snoop_base, snoop_seesaw] = queue(true, "snoopy");
            [dir_base, dir_seesaw, snoop_base, snoop_seesaw]
        },
        |[dir_base, dir_seesaw, snoop_base, snoop_seesaw]| {
            (
                dir_seesaw.energy_savings_pct(dir_base),
                snoop_seesaw.energy_savings_pct(snoop_base),
            )
        },
    )
}

/// §VI-A's control experiment: spending SEESAW's area budget (TFT +
/// partition muxes, well under 1 KB) on the baseline instead — here, as
/// extra 4 KB-TLB entries — "improved performance over the baseline by
/// less than 0.01% in all cases". Returns runtime improvement over the
/// plain baseline (percent) as `(area_equivalent_baseline, seesaw)`.
pub fn area_control(instructions: u64) -> Result<Vec<AblationRow>, SimError> {
    ablation(
        |plan, name| {
            let base_cfg = cfg64(name, instructions).design(L1DesignKind::BaselineVipt);
            let base = plan.push(format!("{name}/base"), base_cfg.clone());
            // The TFT's 86 bytes buy roughly 8 more TLB entries.
            let mut bigger_cfg = base_cfg;
            bigger_cfg.l1_tlb_4k_entries = Some(136);
            let bigger = plan.push(format!("{name}/tlb136"), bigger_cfg);
            let seesaw = plan.push(format!("{name}/seesaw"), cfg64(name, instructions));
            [base, bigger, seesaw]
        },
        |[base, bigger, seesaw]| {
            (
                bigger.runtime_improvement_pct(base),
                seesaw.runtime_improvement_pct(base),
            )
        },
    )
}

/// Robustness check: SEESAW's gains with and without an L2 stream
/// prefetcher. Prefetching attacks miss latency; SEESAW attacks hit
/// latency and lookup width, so the benefit must survive (it can shrink
/// a little: prefetching trims the miss stalls that dilute everything).
/// Returns runtime improvement (percent) as `(no_prefetch, prefetch)`.
pub fn prefetch_ablation(instructions: u64) -> Result<Vec<AblationRow>, SimError> {
    ablation(
        |plan, name| {
            let mut queue = |degree: Option<usize>, label: &str| {
                let mut base_cfg = cfg64(name, instructions).design(L1DesignKind::BaselineVipt);
                base_cfg.prefetch_degree = degree;
                let mut seesaw_cfg = cfg64(name, instructions);
                seesaw_cfg.prefetch_degree = degree;
                [
                    plan.push(format!("{name}/{label}/base"), base_cfg),
                    plan.push(format!("{name}/{label}/seesaw"), seesaw_cfg),
                ]
            };
            let [np_base, np_seesaw] = queue(None, "no-prefetch");
            let [pf_base, pf_seesaw] = queue(Some(4), "prefetch4");
            [np_base, np_seesaw, pf_base, pf_seesaw]
        },
        |[np_base, np_seesaw, pf_base, pf_seesaw]| {
            (
                np_seesaw.runtime_improvement_pct(np_base),
                pf_seesaw.runtime_improvement_pct(pf_base),
            )
        },
    )
}

/// Renders ablation rows with the given column labels.
pub fn ablation_table(rows: &[AblationRow], label_a: &str, label_b: &str) -> Table {
    let mut table = Table::new(vec!["workload", label_a, label_b]);
    for r in rows {
        table.row(vec![r.workload.into(), pct(r.value_a), pct(r.value_b)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 100_000;

    #[test]
    fn four_way_insertion_costs_little_hit_rate() {
        let rows = insertion_ablation(QUICK).unwrap();
        for r in &rows {
            let delta = r.value_b - r.value_a;
            assert!(
                delta < 2.0,
                "{}: 4way hit rate {:.2}% vs 4way-8way {:.2}%",
                r.workload,
                r.value_a,
                r.value_b
            );
        }
    }

    #[test]
    fn tft_flushing_costs_under_a_percent() {
        let rows = asid_flush_ablation(QUICK).unwrap();
        for r in &rows {
            assert!(
                r.value_a < 101.0,
                "{}: flushing TFT cost {:.2}% of ideal runtime",
                r.workload,
                r.value_a
            );
        }
    }

    #[test]
    fn snoopy_increases_savings() {
        let rows = snoopy_ablation(QUICK).unwrap();
        let avg_dir: f64 = rows.iter().map(|r| r.value_a).sum::<f64>() / rows.len() as f64;
        let avg_snoop: f64 = rows.iter().map(|r| r.value_b).sum::<f64>() / rows.len() as f64;
        assert!(
            avg_snoop > avg_dir,
            "snoopy ({avg_snoop:.2}%) should beat directory ({avg_dir:.2}%)"
        );
    }

    #[test]
    fn seesaw_gains_survive_prefetching() {
        let rows = prefetch_ablation(QUICK).unwrap();
        for r in &rows {
            assert!(
                r.value_b > 0.0,
                "{}: SEESAW gain with prefetching {:.2}%",
                r.workload,
                r.value_b
            );
        }
    }

    #[test]
    fn area_equivalent_baseline_gains_almost_nothing() {
        let rows = area_control(QUICK).unwrap();
        for r in &rows {
            assert!(
                r.value_a < 1.0,
                "{}: area-equivalent baseline gained {:.3}%",
                r.workload,
                r.value_a
            );
            assert!(
                r.value_b > r.value_a,
                "{}: SEESAW ({:.2}%) must beat the area control ({:.3}%)",
                r.workload,
                r.value_b,
                r.value_a
            );
        }
    }

    #[test]
    fn table_renders() {
        let rows = vec![AblationRow {
            workload: "redis",
            value_a: 1.0,
            value_b: 2.0,
        }];
        assert!(ablation_table(&rows, "a", "b").to_string().contains("redis"));
    }
}
