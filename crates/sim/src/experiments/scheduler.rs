//! §IV-B3 ablation: the scheduler's hit-time assumption policy under a
//! range of squash costs and fragmentation levels.
//!
//! The paper motivates two mechanisms: speculatively assuming the *fast*
//! hit time (so superpage hits actually shorten the critical path), and
//! an occupancy counter on the superpage TLB that flips to the *slow*
//! assumption when superpages are scarce (so base-page-heavy phases don't
//! squash constantly). This experiment makes both effects visible: it
//! sweeps the squash cost (modelling deeper speculative wakeup) and the
//! memhog pressure (controlling how many base pages the workload sees),
//! for the three policies.

use crate::report::pct;
use crate::runner::Plan;
use crate::{
    CpuKind, Frequency, L1DesignKind, RunConfig, SchedulerHintPolicy, SimError, Table,
};

/// One cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRow {
    /// Hit-time policy.
    pub policy: SchedulerHintPolicy,
    /// Cycles a hit-time mis-assumption costs.
    pub squash_cycles: u64,
    /// memhog pressure (percent).
    pub memhog: u32,
    /// Runtime improvement over the baseline VIPT design.
    pub improvement_pct: f64,
}

/// Squash costs swept (0 = the paper's quarter-cycle TFT re-schedule;
/// larger values model schedulers that wake dependents earlier).
pub const SQUASH_COSTS: [u64; 3] = [0, 4, 12];

/// Fragmentation levels swept.
pub const MEMHOG_LEVELS: [u32; 2] = [0, 60];

/// Runs the sweep on one representative workload (redis, 64 KB,
/// out-of-order at 1.33 GHz). One baseline cell per memhog level serves
/// every policy × squash cell — the baseline is hoisted out of the inner
/// loops entirely and shared through the plan.
pub fn scheduler_ablation(instructions: u64) -> Result<Vec<SchedulerRow>, SimError> {
    let mut plan = Plan::new();
    let mut cells = Vec::new();
    for &memhog in &MEMHOG_LEVELS {
        let base_cfg = RunConfig::paper("redis")
            .l1_size(64)
            .frequency(Frequency::F1_33)
            .cpu(CpuKind::OutOfOrder)
            .memhog(memhog)
            .instructions(instructions);
        let baseline = plan.push(format!("redis/mh{memhog}/base"), base_cfg.clone());
        for policy in [
            SchedulerHintPolicy::Occupancy,
            SchedulerHintPolicy::AlwaysFast,
            SchedulerHintPolicy::AlwaysSlow,
        ] {
            for &squash_cycles in &SQUASH_COSTS {
                let mut cfg = base_cfg.clone().design(L1DesignKind::Seesaw);
                cfg.scheduler_hint = policy;
                cfg.hit_time_squash_cycles = squash_cycles;
                let idx = plan.push(
                    format!("redis/mh{memhog}/{policy:?}/sq{squash_cycles}"),
                    cfg,
                );
                cells.push((policy, squash_cycles, memhog, baseline, idx));
            }
        }
    }
    let results = plan.run()?;
    Ok(cells
        .into_iter()
        .map(|(policy, squash_cycles, memhog, baseline, idx)| SchedulerRow {
            policy,
            squash_cycles,
            memhog,
            improvement_pct: results[idx].runtime_improvement_pct(&results[baseline]),
        })
        .collect())
}

/// Renders the sweep.
pub fn scheduler_table(rows: &[SchedulerRow]) -> Table {
    let mut table = Table::new(vec!["memhog", "policy", "squash", "improvement"]);
    for r in rows {
        table.row(vec![
            format!("mh{}", r.memhog),
            format!("{:?}", r.policy),
            format!("{} cyc", r.squash_cycles),
            pct(r.improvement_pct),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;

    fn improvement(
        policy: SchedulerHintPolicy,
        squash: u64,
        memhog: u32,
    ) -> f64 {
        let base_cfg = RunConfig::quick("redis").l1_size(64).memhog(memhog);
        let baseline = System::build(&base_cfg).unwrap().run().unwrap();
        let mut cfg = base_cfg.design(L1DesignKind::Seesaw);
        cfg.scheduler_hint = policy;
        cfg.hit_time_squash_cycles = squash;
        System::build(&cfg)
            .unwrap()
            .run()
            .unwrap()
            .runtime_improvement_pct(&baseline)
    }

    #[test]
    fn always_slow_still_wins_but_less_than_fast() {
        // Slow assumption forfeits the latency benefit of fast hits; the
        // remaining gains come from fewer squashes and (in energy) narrow
        // lookups. Fast must beat Slow when superpages are plentiful.
        let fast = improvement(SchedulerHintPolicy::AlwaysFast, 0, 0);
        let slow = improvement(SchedulerHintPolicy::AlwaysSlow, 0, 0);
        assert!(
            fast > slow,
            "fast assumption ({fast:.2}%) must beat slow ({slow:.2}%) with ample superpages"
        );
    }

    #[test]
    fn occupancy_policy_tracks_the_better_static_choice() {
        // With ample superpages the occupancy counter stays in Fast mode,
        // so it should match AlwaysFast closely.
        let occupancy = improvement(SchedulerHintPolicy::Occupancy, 4, 0);
        let fast = improvement(SchedulerHintPolicy::AlwaysFast, 4, 0);
        assert!(
            (occupancy - fast).abs() < 2.0,
            "occupancy ({occupancy:.2}%) should track fast ({fast:.2}%) when superpages abound"
        );
    }

    #[test]
    fn expensive_squashes_hurt_always_fast_under_fragmentation() {
        // At heavy fragmentation with a costly squash, AlwaysFast pays for
        // every base-page hit; a 12-cycle penalty must show as a loss
        // versus the free-squash configuration.
        let cheap = improvement(SchedulerHintPolicy::AlwaysFast, 0, 80);
        let costly = improvement(SchedulerHintPolicy::AlwaysFast, 12, 80);
        assert!(
            costly < cheap,
            "12-cycle squashes ({costly:.2}%) must cost vs free ({cheap:.2}%)"
        );
    }
}
