//! One driver per table and figure in the paper's evaluation.
//!
//! Every driver takes an instruction (or reference) budget so the same
//! code backs the full experiment binaries (`cargo run -p seesaw-bench
//! --bin figN`) and the Criterion benches. Each returns structured rows
//! plus a [`crate::Table`] renderer, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

mod ablations;
mod designs;
mod fig2;
mod fig3;
mod fig7;
mod fig10;
mod fig12;
mod fig13;
mod fig14;
mod fig15;
mod multicore;
mod partitions;
mod plans;
mod scheduler;
mod tables;

pub use ablations::{
    ablation_table, area_control, asid_flush_ablation, insertion_ablation, prefetch_ablation,
    snoopy_ablation, AblationRow,
};
pub use designs::{
    all_design_kinds, design_fingerprint, designs, designs_table, DesignRow, DESIGN_LAB,
};
pub use fig2::{fig2a, fig2a_table, fig2b, fig2bc_table, fig2c, Fig2aRow, Fig2bRow};
pub use fig3::{fig3, fig3_table, Fig3Row, FIG3_MEMHOG};
pub use fig7::{fig7, fig7_table, fig8, fig9, freq_sweep_table, Fig7Row, FreqSweepRow};
pub use fig10::{fig10, fig10_table, fig11, fig11_table, Fig10Row, Fig11Row};
pub use fig12::{fig12, fig12_table, Fig12Row};
pub use fig13::{fig13, fig13_table, Fig13Row};
pub use fig14::{fig14, fig14_table, Fig14Row};
pub use fig15::{fig15, fig15_table, Fig15Row};
pub use multicore::{
    multicore_sweep, multicore_table, MulticoreRow, CORE_COUNTS, MULTICORE_WORKLOADS,
};
pub use partitions::{partition_ablation, partition_table, valid_partitioning, PartitionRow};
pub use plans::{plan_cells, plan_names, PlanCell, PLAN_NAMES};
pub use scheduler::{scheduler_ablation, scheduler_table, SchedulerRow, MEMHOG_LEVELS, SQUASH_COSTS};
pub use tables::{table1, table1_table, table2, table3, table3_table, Table1Row, Table3Row};
