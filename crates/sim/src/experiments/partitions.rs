//! §IV-A1/§IV-B4 ablation: the partition size.
//!
//! The paper picks 4-way (16 KB) partitions "for its desirable latency and
//! energy characteristics" and keeps that grain at every capacity. This
//! sweep varies ways-per-partition for a fixed cache and shows the
//! trade-off: narrower partitions look up fewer ways (better latency and
//! energy for superpage hits) but concentrate insertion pressure (lower
//! effective associativity for the partition-local victim choice).

use seesaw_energy::SramModel;

use crate::report::pct;
use crate::runner::Plan;
use crate::{CpuKind, Frequency, L1DesignKind, RunConfig, SimError, Table};

/// One partition-size data point.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionRow {
    /// Ways per partition.
    pub ways_per_partition: usize,
    /// Partition count.
    pub partitions: usize,
    /// Superpage-hit lookup cycles at 1.33 GHz.
    pub fast_cycles: u64,
    /// Runtime improvement over baseline VIPT.
    pub perf_pct: f64,
    /// Energy savings over baseline VIPT.
    pub energy_pct: f64,
    /// L1 MPKI (insertion-pressure indicator).
    pub mpki: f64,
}

/// Sweeps ways-per-partition on the 64 KB, 16-way geometry for one
/// representative workload (redis, out-of-order, 1.33 GHz).
pub fn partition_ablation(instructions: u64) -> Result<Vec<PartitionRow>, SimError> {
    let sram = SramModel::tsmc28_scaled_22nm();
    let base_cfg = RunConfig::paper("redis")
        .l1_size(64)
        .frequency(Frequency::F1_33)
        .cpu(CpuKind::OutOfOrder)
        .instructions(instructions);
    let mut plan = Plan::new();
    let baseline = plan.push("redis/base", base_cfg.clone());
    let sweep: Vec<(usize, usize, usize)> = [2usize, 4, 8]
        .into_iter()
        .map(|ways_per_partition| {
            let partitions = 16 / ways_per_partition;
            let mut cfg = base_cfg.clone().design(L1DesignKind::Seesaw);
            cfg.seesaw_partitions = Some(partitions);
            let idx = plan.push(format!("redis/{partitions}p"), cfg);
            (ways_per_partition, partitions, idx)
        })
        .collect();
    let results = plan.run()?;
    let baseline = &results[baseline];

    Ok(sweep
        .into_iter()
        .map(|(ways_per_partition, partitions, idx)| {
            let r = &results[idx];
            PartitionRow {
                ways_per_partition,
                partitions,
                fast_cycles: sram.partition_lookup_cycles(64, 16, partitions, 1.33),
                perf_pct: r.runtime_improvement_pct(baseline),
                energy_pct: r.energy_savings_pct(baseline),
                mpki: r.l1_mpki,
            }
        })
        .collect())
}

/// Renders the sweep.
pub fn partition_table(rows: &[PartitionRow]) -> Table {
    let mut table = Table::new(vec![
        "ways/partition",
        "partitions",
        "fast cycles",
        "perf",
        "energy",
        "MPKI",
    ]);
    for r in rows {
        table.row(vec![
            r.ways_per_partition.to_string(),
            r.partitions.to_string(),
            r.fast_cycles.to_string(),
            pct(r.perf_pct),
            pct(r.energy_pct),
            format!("{:.1}", r.mpki),
        ]);
    }
    table
}

/// Validates a partition count against a SEESAW geometry (used by the
/// config plumbing).
pub fn valid_partitioning(size_kb: u64, partitions: usize) -> bool {
    let ways = ((size_kb << 10) / (64 * 64)) as usize;
    partitions > 0
        && partitions.is_power_of_two()
        && ways.is_multiple_of(partitions)
        && ways / partitions >= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;

    #[test]
    fn narrower_partitions_save_more_energy() {
        let base_cfg = RunConfig::quick("redis").l1_size(64);
        let baseline = System::build(&base_cfg).unwrap().run().unwrap();
        let energy = |partitions: usize| {
            let mut cfg = base_cfg.clone().design(L1DesignKind::Seesaw);
            cfg.seesaw_partitions = Some(partitions);
            System::build(&cfg)
                .unwrap()
                .run()
                .unwrap()
                .energy_savings_pct(&baseline)
        };
        let two_way = energy(8); // 16 ways / 8 partitions = 2-way
        let eight_way = energy(2); // 16 ways / 2 partitions = 8-way
        assert!(
            two_way > eight_way,
            "2-way partitions ({two_way:.2}%) should out-save 8-way ({eight_way:.2}%)"
        );
    }

    #[test]
    fn narrower_partitions_pressure_insertion() {
        let base_cfg = RunConfig::quick("gems").l1_size(64);
        let mpki = |partitions: usize| {
            let mut cfg = base_cfg.clone().design(L1DesignKind::Seesaw);
            cfg.seesaw_partitions = Some(partitions);
            System::build(&cfg).unwrap().run().unwrap().l1_mpki
        };
        let narrow = mpki(8);
        let wide = mpki(2);
        assert!(
            narrow >= wide * 0.98,
            "2-way-partition insertion ({narrow:.1} MPKI) should not beat 8-way ({wide:.1})"
        );
    }

    #[test]
    fn partitioning_validation() {
        assert!(valid_partitioning(64, 4));
        assert!(valid_partitioning(64, 16));
        assert!(!valid_partitioning(64, 3));
        assert!(!valid_partitioning(64, 32));
        assert!(valid_partitioning(32, 2));
    }

    #[test]
    fn table_renders() {
        let rows = vec![PartitionRow {
            ways_per_partition: 4,
            partitions: 4,
            fast_cycles: 1,
            perf_pct: 10.0,
            energy_pct: 15.0,
            mpki: 50.0,
        }];
        assert!(partition_table(&rows).to_string().contains("4"));
    }
}
