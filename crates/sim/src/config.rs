//! Run configuration (the knobs of Tables II and III).

use seesaw_check::FaultConfig;
use seesaw_core::InsertionPolicy;
use seesaw_workloads::{catalog, WorkloadSpec};

/// How the out-of-order scheduler picks its assumed hit time for SEESAW
/// loads (§IV-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerHintPolicy {
    /// The paper's design: assume fast while the superpage TLB holds at
    /// least a quarter of its capacity, else assume slow.
    #[default]
    Occupancy,
    /// Always assume the fast hit time (ablation: shows the squash storms
    /// the occupancy counter prevents when superpages are scarce).
    AlwaysFast,
    /// Always assume the slow hit time (ablation: "a faster hit due to
    /// SEESAW may not translate to overall runtime reduction, but will
    /// still provide the same energy benefits").
    AlwaysSlow,
}

/// The three clock frequencies the paper evaluates (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frequency {
    /// 1.33 GHz.
    F1_33,
    /// 2.80 GHz.
    F2_80,
    /// 4.00 GHz.
    F4_00,
}

impl Frequency {
    /// All three, ascending.
    pub const ALL: [Frequency; 3] = [Frequency::F1_33, Frequency::F2_80, Frequency::F4_00];

    /// The frequency in GHz.
    pub fn ghz(self) -> f64 {
        match self {
            Frequency::F1_33 => 1.33,
            Frequency::F2_80 => 2.80,
            Frequency::F4_00 => 4.00,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Frequency::F1_33 => "1.33GHz",
            Frequency::F2_80 => "2.80GHz",
            Frequency::F4_00 => "4.00GHz",
        }
    }
}

/// Which core the system models (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// ~Intel Atom: dual-issue in-order.
    InOrder,
    /// ~Intel Sandybridge: 168-entry ROB out-of-order.
    OutOfOrder,
}

/// The L1 design under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1DesignKind {
    /// Conventional VIPT at the paper's baseline associativity
    /// (8/16/32 ways for 32/64/128 KB).
    BaselineVipt,
    /// The baseline with an MRU way predictor (Fig. 15's "WP").
    BaselineWithWayPrediction,
    /// SEESAW.
    Seesaw,
    /// SEESAW plus way prediction (Fig. 15's "WP+SEESAW").
    SeesawWithWayPrediction,
    /// A PIPT alternative with the given associativity and translation
    /// serialized before indexing (Fig. 14's design-space points).
    Pipt {
        /// Associativity of the PIPT design.
        ways: usize,
    },
    /// A VIVT alternative with synonym-tracking hardware (§II-A, §VII):
    /// hits bypass the TLB entirely, at the complexity cost the paper
    /// cites for rejecting it.
    Vivt {
        /// Associativity of the VIVT design.
        ways: usize,
    },
}

/// Everything one simulation run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The workload.
    pub workload: WorkloadSpec,
    /// L1 capacity in KB (32, 64, or 128 in the paper).
    pub l1_size_kb: u64,
    /// Core clock.
    pub frequency: Frequency,
    /// Core kind.
    pub cpu: CpuKind,
    /// L1 design.
    pub design: L1DesignKind,
    /// Instructions to simulate.
    pub instructions: u64,
    /// memhog's share of physical memory, in percent (Fig. 3 / Fig. 12).
    pub memhog_percent: u32,
    /// TFT entries (Fig. 13 sweeps 12–20).
    pub tft_entries: usize,
    /// Override SEESAW's partition count (default: ways/4, the paper's
    /// 4-way partitions; §IV-B4's design-choice sweep uses this).
    pub seesaw_partitions: Option<usize>,
    /// Insertion policy (§IV-B1 ablation).
    pub insertion: InsertionPolicy,
    /// Snoopy instead of directory coherence (§VI-B): multiplies probe
    /// traffic by the broadcast factor.
    pub snoopy: bool,
    /// Attach an L2 stream prefetcher of this degree (`None` = off, the
    /// paper's unstated baseline; the robustness ablation turns it on).
    pub prefetch_degree: Option<usize>,
    /// Context-switch interval in instructions (TFT flush, §IV-C3);
    /// `None` disables switching.
    pub context_switch_interval: Option<u64>,
    /// Interval for OS page-table churn (splinter + later re-promote,
    /// §IV-C2); `None` disables it.
    pub page_op_interval: Option<u64>,
    /// Scale the 4 KB L1 TLB to this many entries (Fig. 14's
    /// smaller-TLB alternatives).
    pub l1_tlb_4k_entries: Option<usize>,
    /// How the scheduler picks its assumed hit time (§IV-B3).
    pub scheduler_hint: SchedulerHintPolicy,
    /// Squash cost (cycles) when the Fast hit-time assumption meets a
    /// base-page access. The TFT's quarter-cycle answer lets the paper's
    /// scheduler re-wake dependents before they issue, so the default is
    /// 0; raise it to model deeper speculative wakeup (§IV-B3).
    pub hit_time_squash_cycles: u64,
    /// Warmup instructions excluded from measurement; `None` = a third
    /// of the budget, capped at 500k.
    pub warmup_instructions: Option<u64>,
    /// Emit a telemetry [`crate::Sample`] every this many instructions of
    /// the measured window; `None` disables sampling.
    pub sample_interval: Option<u64>,
    /// Run the differential shadow checker in lockstep with the timing
    /// model (off by default: it costs a hash lookup per access).
    pub checker: bool,
    /// Attach a seeded fault injector firing splinters, promotions,
    /// shootdowns, TFT storms, context switches, and memory pressure at
    /// randomized points; `None` disables injection.
    pub faults: Option<FaultConfig>,
    /// Capture a typed event trace of the measured window into
    /// [`crate::RunResult::trace`] (off by default: with this false the
    /// hot loop monomorphizes with the null sink and emits nothing).
    pub trace: bool,
    /// RNG seed.
    pub seed: u64,
}

impl RunConfig {
    /// Default instruction budget for full experiment runs.
    pub const DEFAULT_INSTRUCTIONS: u64 = 2_000_000;

    /// A full-length run for the named workload with paper defaults:
    /// 32 KB SEESAW-capable geometry, 1.33 GHz, out-of-order, baseline
    /// VIPT design.
    ///
    /// # Panics
    /// Panics if the workload name is unknown.
    pub fn paper(workload: &str) -> Self {
        let spec = *catalog()
            .iter()
            .find(|w| w.name == workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        Self {
            workload: spec,
            l1_size_kb: 32,
            frequency: Frequency::F1_33,
            cpu: CpuKind::OutOfOrder,
            design: L1DesignKind::BaselineVipt,
            instructions: Self::DEFAULT_INSTRUCTIONS,
            memhog_percent: 0,
            tft_entries: 16,
            seesaw_partitions: None,
            insertion: InsertionPolicy::FourWay,
            snoopy: false,
            prefetch_degree: None,
            scheduler_hint: SchedulerHintPolicy::Occupancy,
            context_switch_interval: Some(1_000_000),
            page_op_interval: None,
            l1_tlb_4k_entries: None,
            hit_time_squash_cycles: 0,
            warmup_instructions: None,
            sample_interval: None,
            checker: false,
            faults: None,
            trace: false,
            seed: 0x5eea,
        }
    }

    /// A short run for tests and doc examples.
    pub fn quick(workload: &str) -> Self {
        Self {
            instructions: 150_000,
            ..Self::paper(workload)
        }
    }

    /// Builder: set the L1 design.
    pub fn design(mut self, design: L1DesignKind) -> Self {
        self.design = design;
        self
    }

    /// Builder: set the core kind.
    pub fn cpu(mut self, cpu: CpuKind) -> Self {
        self.cpu = cpu;
        self
    }

    /// Builder: set the L1 capacity in KB.
    pub fn l1_size(mut self, kb: u64) -> Self {
        self.l1_size_kb = kb;
        self
    }

    /// Builder: set the clock.
    pub fn frequency(mut self, f: Frequency) -> Self {
        self.frequency = f;
        self
    }

    /// Builder: set memhog pressure.
    pub fn memhog(mut self, percent: u32) -> Self {
        self.memhog_percent = percent;
        self
    }

    /// Builder: set the instruction budget.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Builder: enable the differential shadow checker.
    pub fn with_checker(mut self) -> Self {
        self.checker = true;
        self
    }

    /// Builder: attach a fault injector.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder: capture a typed event trace of the measured window.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The paper's baseline associativity for this capacity (Fig. 1c:
    /// 64 sets, grow by ways).
    pub fn baseline_ways(&self) -> usize {
        ((self.l1_size_kb << 10) / (64 * 64)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_table_iii() {
        let ghz: Vec<f64> = Frequency::ALL.iter().map(|f| f.ghz()).collect();
        assert_eq!(ghz, vec![1.33, 2.80, 4.00]);
    }

    #[test]
    fn baseline_ways_track_capacity() {
        assert_eq!(RunConfig::paper("astar").l1_size(32).baseline_ways(), 8);
        assert_eq!(RunConfig::paper("astar").l1_size(64).baseline_ways(), 16);
        assert_eq!(RunConfig::paper("astar").l1_size(128).baseline_ways(), 32);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        RunConfig::paper("doom");
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::quick("redis")
            .design(L1DesignKind::Seesaw)
            .cpu(CpuKind::InOrder)
            .l1_size(64)
            .frequency(Frequency::F4_00)
            .memhog(30)
            .instructions(1000);
        assert_eq!(cfg.l1_size_kb, 64);
        assert_eq!(cfg.instructions, 1000);
        assert_eq!(cfg.memhog_percent, 30);
        assert_eq!(cfg.design, L1DesignKind::Seesaw);
    }
}
