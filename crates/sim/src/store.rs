//! The persistent content-addressed result store (`SEESAW_STORE=<dir>`).
//!
//! The runner's memo cache is process-wide and in-memory: a killed sweep
//! loses every completed cell. This module backs it with an on-disk
//! store so a re-launched sweep resumes from what already finished —
//! across processes, across machines sharing a directory, and across
//! unrelated sweeps that happen to contain the same configuration
//! (cross-run dedupe). Design:
//!
//! * **Content addressing.** Records are keyed by the existing
//!   [`fingerprint`](crate::runner::fingerprint) of the `RunConfig`; the
//!   file name is its 128-bit FNV-1a digest (`r-<digest>.rec` for
//!   results, `f-<digest>.rec` for checker failures) and the payload
//!   repeats the full fingerprint, which [`Store::get`] verifies — a
//!   digest collision degrades to a miss, never a wrong answer.
//! * **Append-only record files, atomic commits.** A record is written
//!   to a private `.tmp-<pid>-<n>` file and `rename`d into place, so a
//!   record either exists completely or not at all — a `SIGKILL` mid-
//!   write leaves at worst a stale tmp file. Committed records are never
//!   modified (only atomically replaced by an identical re-computation),
//!   and every commit appends one line to `journal.log`, the store's
//!   audit trail.
//! * **Per-record checksums, corruption-tolerant loading.** Each record
//!   carries its payload length and FNV-1a checksum in the header. A
//!   truncated, garbled, or version-skewed record is *skipped* (counted
//!   in [`StoreStats::corrupt`]) and transparently rewritten when the
//!   cell is re-simulated — corruption is never a panic and never an
//!   error surfaced to the sweep.
//! * **Bit-exact round-trips.** Every `u64` is decimal text and every
//!   `f64` is its IEEE bit pattern in hex (`f<16 hex digits>`), so a
//!   result served from disk is indistinguishable from the result a
//!   fresh simulation would produce — the property the chaos tests pin
//!   (`tests/chaos.rs`: kill-and-resume must be bit-identical to an
//!   undisturbed serial run). Results carrying a captured event trace
//!   ([`RunResult::trace`]) are deliberately not persisted: traces are
//!   debugging artifacts, orders of magnitude larger than the counters,
//!   and traced configs never recur across sweeps.
//!
//! Checker failures persist too, as lightweight markers (violation kind,
//! instruction, detail, autosaved bundle path): a resumed sweep learns a
//! cell is known-bad without re-simulating it, and keeps the pointer to
//! the repro bundle the failing run already saved. The marker's
//! rehydrated [`Violation`] carries an empty event history — the full
//! diagnostic lives in the bundle the path points at.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use seesaw_cache::CacheStats;
use seesaw_check::{CheckerSummary, InjectionStats, ReproBundle, Violation, ViolationKind};
use seesaw_coherence::CoherenceStats;
use seesaw_core::{SeesawStats, TftStats};
use seesaw_cpu::RunTotals;
use seesaw_energy::EnergyBreakdown;
use seesaw_tlb::TlbStats;
use seesaw_trace::{Collect, Log2Histogram, MetricsRegistry, MetricValue};

use crate::stats::{CoreResult, Sample};
use crate::{RunResult, SimError};

const MAGIC: &str = "seesaw-store";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Shared record IO: one wire format for every on-disk record.
//
// The store and the distributed fabric (`crate::fabric`) write the same
// shape of file — `seesaw-store 1 <kind> <len> <crc16hex>\n` followed by
// the payload and a trailing newline — committed via a private tmp file
// and an atomic rename. These free helpers are the single
// implementation; `Store` layers its journal and traffic counters on
// top, the fabric layers its queue semantics. DESIGN.md §16 is the
// normative specification of the format.
// ---------------------------------------------------------------------------

/// Process-wide tmp-file sequence shared by every record writer, so two
/// handles on the same directory never collide on a tmp name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically commits one checksummed record: header + payload written
/// to `.tmp-<pid>-<seq>`, fsynced, then renamed to `name`. Returns the
/// payload's FNV-1a-64 checksum (the journal line wants it).
///
/// # Errors
/// Any filesystem error; the tmp file is removed on failure.
pub(crate) fn commit_record(
    dir: &Path,
    name: &str,
    kind: &str,
    payload: &str,
) -> std::io::Result<u64> {
    let crc = fnv1a64(payload.as_bytes());
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let finished = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(record_bytes(kind, payload).as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, dir.join(name))?;
        Ok(())
    })();
    match finished {
        Ok(()) => Ok(crc),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The full file image of one record — header, payload, trailing
/// newline. The fabric writes claim records through `create_new` (the
/// O_EXCL exclusivity is the claim) and so cannot go through
/// [`commit_record`]'s tmp+rename path.
pub(crate) fn record_bytes(kind: &str, payload: &str) -> String {
    let crc = fnv1a64(payload.as_bytes());
    format!(
        "{MAGIC} {VERSION} {kind} {} {crc:016x}\n{payload}\n",
        payload.len()
    )
}

/// Reads and validates one record file, returning `(kind, payload)`.
/// `None` for absent, truncated, garbled, or version-skewed records —
/// corruption is a skip, never a panic.
pub(crate) fn read_record_at(path: &Path) -> Option<(String, String)> {
    let bytes = fs::read(path).ok()?;
    let text = String::from_utf8(bytes).ok()?;
    let (header, rest) = text.split_once('\n')?;
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return None;
    }
    if fields.next()?.parse::<u32>().ok()? != VERSION {
        return None;
    }
    let kind = fields.next()?;
    let len: usize = fields.next()?.parse().ok()?;
    let crc = u64::from_str_radix(fields.next()?, 16).ok()?;
    if fields.next().is_some() || rest.len() < len {
        return None;
    }
    let payload = &rest[..len];
    if fnv1a64(payload.as_bytes()) != crc {
        return None;
    }
    Some((kind.to_string(), payload.to_string()))
}

/// 128-bit FNV-1a digest of a fingerprint, as 32 hex digits — the
/// record's file-name stem and the short form of the configuration
/// attached to supervisor reports.
pub fn digest(fingerprint: &str) -> String {
    format!("{:032x}", fnv1a128(fingerprint.as_bytes()))
}

/// The low 64 bits of [`digest`], for seeding the deterministic backoff
/// jitter.
pub fn digest64(fingerprint: &str) -> u64 {
    fnv1a128(fingerprint.as_bytes()) as u64
}

fn fnv1a128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Counters of one [`Store`]'s traffic, exported under the `store.*`
/// namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Results served from disk.
    pub hits: u64,
    /// Failure markers served from disk.
    pub failure_hits: u64,
    /// Lookups that found no record.
    pub misses: u64,
    /// Records committed (results + failures).
    pub writes: u64,
    /// Commits that failed at the filesystem level (warned, not fatal).
    pub write_errors: u64,
    /// Records skipped because they were truncated, garbled, or
    /// version-skewed.
    pub corrupt: u64,
    /// Results not persisted because they carry a captured event trace.
    pub traced_skipped: u64,
}

impl Collect for StoreStats {
    fn collect(&self, prefix: &str, out: &mut MetricsRegistry) {
        let StoreStats {
            hits,
            failure_hits,
            misses,
            writes,
            write_errors,
            corrupt,
            traced_skipped,
        } = *self;
        out.set_u64(&format!("{prefix}.hits"), hits);
        out.set_u64(&format!("{prefix}.failure_hits"), failure_hits);
        out.set_u64(&format!("{prefix}.misses"), misses);
        out.set_u64(&format!("{prefix}.writes"), writes);
        out.set_u64(&format!("{prefix}.write_errors"), write_errors);
        out.set_u64(&format!("{prefix}.corrupt"), corrupt);
        out.set_u64(&format!("{prefix}.traced_skipped"), traced_skipped);
    }
}

/// What a [`Store::get`] found for a fingerprint.
#[derive(Debug)]
pub enum StoredOutcome {
    /// A completed result, bit-identical to the run that produced it
    /// (boxed: a `RunResult` is ~2 KB and the failure arm is small).
    Result(Box<RunResult>),
    /// A known checker failure, rehydrated as [`SimError::Check`] (empty
    /// event history; the autosaved bundle carries the full diagnostic).
    Failure(SimError),
}

/// A handle on one on-disk store directory (see the module docs).
/// Cheap to share behind an `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: Mutex<()>,
    hits: AtomicU64,
    failure_hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    corrupt: AtomicU64,
    traced_skipped: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    /// Returns the I/O error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            journal: Mutex::new(()),
            hits: AtomicU64::new(0),
            failure_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            traced_skipped: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of this handle's traffic counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            failure_hits: self.failure_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            traced_skipped: self.traced_skipped.load(Ordering::Relaxed),
        }
    }

    /// Looks up a fingerprint: a completed result first, then a failure
    /// marker. Corrupt records are skipped (counted), never an error.
    pub fn get(&self, fingerprint: &str) -> Option<StoredOutcome> {
        let d = digest(fingerprint);
        if let Some(payload) = self.read_record(&self.dir.join(format!("r-{d}.rec"))) {
            match decode_result(&payload, fingerprint) {
                Ok(Some(result)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(StoredOutcome::Result(Box::new(result)));
                }
                Ok(None) => {} // digest collision: some other config's record
                Err(_) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(payload) = self.read_record(&self.dir.join(format!("f-{d}.rec"))) {
            match decode_failure(&payload, fingerprint) {
                Ok(Some(error)) => {
                    self.failure_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(StoredOutcome::Failure(error));
                }
                Ok(None) => {}
                Err(_) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Persists a completed result (best-effort: filesystem trouble is a
    /// warning, never an error — the in-memory result is already safe).
    /// Results carrying a captured event trace are not persisted.
    pub fn put_result(&self, fingerprint: &str, result: &RunResult) {
        let Some(payload) = encode_result(fingerprint, result) else {
            self.traced_skipped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let name = format!("r-{}.rec", digest(fingerprint));
        self.commit(&name, "result", &payload);
    }

    /// Persists a checker-failure marker with its autosaved bundle path.
    /// Non-checker failures (allocation, page fault — configuration
    /// bugs, not sweep outcomes) are not persisted.
    pub fn put_failure(&self, fingerprint: &str, error: &SimError) {
        let SimError::Check(v) = error else {
            return;
        };
        let payload = encode_failure(fingerprint, v);
        let name = format!("f-{}.rec", digest(fingerprint));
        self.commit(&name, "failure", &payload);
    }

    /// Scans every record file, returning `(valid, corrupt)` counts —
    /// the integrity audit `chaos_smoke` runs after crash-recovery.
    pub fn verify(&self) -> (usize, usize) {
        let (mut valid, mut corrupt) = (0, 0);
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.ends_with(".rec") {
                continue;
            }
            match self.read_record_quiet(&entry.path()) {
                Some(_) => valid += 1,
                None => corrupt += 1,
            }
        }
        (valid, corrupt)
    }

    /// Number of committed record files.
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".rec"))
            .count()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn commit(&self, name: &str, kind: &str, payload: &str) {
        match commit_record(&self.dir, name, kind, payload) {
            Ok(crc) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                let _guard = self.journal.lock().expect("store journal lock");
                let line = format!("{kind} {name} {} {crc:016x}\n", payload.len());
                let _ = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join("journal.log"))
                    .and_then(|mut j| j.write_all(line.as_bytes()));
            }
            Err(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "warning: SEESAW_STORE write of {name} failed ({e}); \
                     the sweep continues without persisting this cell"
                );
            }
        }
    }

    /// Reads and validates one record file; `None` for absent, truncated,
    /// garbled, or version-skewed records (the corrupt counter is bumped
    /// by the callers that distinguish absent from damaged).
    fn read_record(&self, path: &Path) -> Option<String> {
        if !path.exists() {
            return None;
        }
        match self.read_record_quiet(path) {
            Some(p) => Some(p),
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read_record_quiet(&self, path: &Path) -> Option<String> {
        read_record_at(path).map(|(_kind, payload)| payload)
    }
}

/// The process-wide store named by `SEESAW_STORE=<dir>` (read once; an
/// unopenable directory warns and disables persistence). `None` when the
/// variable is unset or empty.
pub fn process_store() -> Option<&'static std::sync::Arc<Store>> {
    use std::sync::{Arc, OnceLock};
    static STORE: OnceLock<Option<Arc<Store>>> = OnceLock::new();
    STORE
        .get_or_init(|| {
            let dir = std::env::var("SEESAW_STORE").ok()?;
            if dir.is_empty() {
                return None;
            }
            match Store::open(&dir) {
                Ok(s) => Some(Arc::new(s)),
                Err(e) => {
                    eprintln!(
                        "warning: SEESAW_STORE={dir} could not be opened ({e}); \
                         sweeps will run without persistence"
                    );
                    None
                }
            }
        })
        .as_ref()
}

// ---------------------------------------------------------------------------
// Payload codec: flat `key value` lines, one per scalar.
// ---------------------------------------------------------------------------

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

pub(crate) struct Enc {
    pub(crate) out: String,
}

impl Enc {
    pub(crate) fn new(fingerprint: &str) -> Enc {
        let mut e = Enc::raw();
        e.s("fingerprint", fingerprint);
        e
    }

    /// An encoder with no leading `fingerprint` line — fabric claim and
    /// manifest records are not keyed by a configuration.
    pub(crate) fn raw() -> Enc {
        Enc { out: String::new() }
    }

    pub(crate) fn line(&mut self, key: &str, value: impl std::fmt::Display) {
        self.out.push_str(key);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    pub(crate) fn u(&mut self, key: &str, v: u64) {
        self.line(key, v);
    }

    fn f(&mut self, key: &str, v: f64) {
        self.line(key, format_args!("f{:016x}", v.to_bits()));
    }

    pub(crate) fn s(&mut self, key: &str, v: &str) {
        self.line(key, esc(v));
    }

    fn opt_f(&mut self, key: &str, v: Option<f64>) {
        match v {
            Some(x) => self.f(key, x),
            None => self.line(key, "none"),
        }
    }
}

pub(crate) struct Dec<'a> {
    map: HashMap<&'a str, &'a str>,
}

pub(crate) type DecErr = String;

impl<'a> Dec<'a> {
    pub(crate) fn new(payload: &'a str) -> Dec<'a> {
        let mut map = HashMap::new();
        for line in payload.lines() {
            if let Some((k, v)) = line.split_once(' ') {
                map.insert(k, v);
            }
        }
        Dec { map }
    }

    pub(crate) fn raw(&self, key: &str) -> Result<&'a str, DecErr> {
        self.map
            .get(key)
            .copied()
            .ok_or_else(|| format!("missing key {key:?}"))
    }

    pub(crate) fn u(&self, key: &str) -> Result<u64, DecErr> {
        self.raw(key)?
            .parse()
            .map_err(|_| format!("key {key:?}: bad integer"))
    }

    fn f(&self, key: &str) -> Result<f64, DecErr> {
        parse_f(self.raw(key)?).ok_or_else(|| format!("key {key:?}: bad float bits"))
    }

    pub(crate) fn s(&self, key: &str) -> Result<String, DecErr> {
        Ok(unesc(self.raw(key)?))
    }

    /// Every `(key, value)` pair whose key starts with `prefix`, with
    /// the prefix stripped — how the fabric's job decoder walks the
    /// open-ended `cfg.*` section.
    pub(crate) fn with_prefix(&self, prefix: &str) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .map
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(prefix)
                    .map(|rest| (rest.to_string(), unesc(v)))
            })
            .collect();
        out.sort();
        out
    }

    fn opt_f(&self, key: &str) -> Result<Option<f64>, DecErr> {
        match self.raw(key)? {
            "none" => Ok(None),
            v => parse_f(v)
                .map(Some)
                .ok_or_else(|| format!("key {key:?}: bad float bits")),
        }
    }
}

fn parse_f(v: &str) -> Option<f64> {
    let hex = v.strip_prefix('f')?;
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

fn enc_totals(e: &mut Enc, p: &str, t: &RunTotals) {
    let RunTotals {
        cycles,
        instructions,
        squashes,
    } = *t;
    e.u(&format!("{p}.cycles"), cycles);
    e.u(&format!("{p}.instructions"), instructions);
    e.u(&format!("{p}.squashes"), squashes);
}

fn dec_totals(d: &Dec, p: &str) -> Result<RunTotals, DecErr> {
    Ok(RunTotals {
        cycles: d.u(&format!("{p}.cycles"))?,
        instructions: d.u(&format!("{p}.instructions"))?,
        squashes: d.u(&format!("{p}.squashes"))?,
    })
}

fn enc_cache(e: &mut Enc, p: &str, c: &CacheStats) {
    let CacheStats {
        hits,
        misses,
        fills,
        evictions,
        writebacks,
        ways_probed,
        coherence_probes,
        coherence_ways_probed,
        coherence_invalidations,
    } = *c;
    e.u(&format!("{p}.hits"), hits);
    e.u(&format!("{p}.misses"), misses);
    e.u(&format!("{p}.fills"), fills);
    e.u(&format!("{p}.evictions"), evictions);
    e.u(&format!("{p}.writebacks"), writebacks);
    e.u(&format!("{p}.ways_probed"), ways_probed);
    e.u(&format!("{p}.coherence_probes"), coherence_probes);
    e.u(&format!("{p}.coherence_ways_probed"), coherence_ways_probed);
    e.u(
        &format!("{p}.coherence_invalidations"),
        coherence_invalidations,
    );
}

fn dec_cache(d: &Dec, p: &str) -> Result<CacheStats, DecErr> {
    Ok(CacheStats {
        hits: d.u(&format!("{p}.hits"))?,
        misses: d.u(&format!("{p}.misses"))?,
        fills: d.u(&format!("{p}.fills"))?,
        evictions: d.u(&format!("{p}.evictions"))?,
        writebacks: d.u(&format!("{p}.writebacks"))?,
        ways_probed: d.u(&format!("{p}.ways_probed"))?,
        coherence_probes: d.u(&format!("{p}.coherence_probes"))?,
        coherence_ways_probed: d.u(&format!("{p}.coherence_ways_probed"))?,
        coherence_invalidations: d.u(&format!("{p}.coherence_invalidations"))?,
    })
}

fn enc_tlb(e: &mut Enc, p: &str, t: &TlbStats) {
    let TlbStats {
        hits,
        misses,
        fills,
        evictions,
        invalidations,
        flushes,
    } = *t;
    e.u(&format!("{p}.hits"), hits);
    e.u(&format!("{p}.misses"), misses);
    e.u(&format!("{p}.fills"), fills);
    e.u(&format!("{p}.evictions"), evictions);
    e.u(&format!("{p}.invalidations"), invalidations);
    e.u(&format!("{p}.flushes"), flushes);
}

fn dec_tlb(d: &Dec, p: &str) -> Result<TlbStats, DecErr> {
    Ok(TlbStats {
        hits: d.u(&format!("{p}.hits"))?,
        misses: d.u(&format!("{p}.misses"))?,
        fills: d.u(&format!("{p}.fills"))?,
        evictions: d.u(&format!("{p}.evictions"))?,
        invalidations: d.u(&format!("{p}.invalidations"))?,
        flushes: d.u(&format!("{p}.flushes"))?,
    })
}

fn enc_seesaw(e: &mut Enc, p: &str, s: &SeesawStats) {
    let SeesawStats {
        super_tft_hit_cache_hit,
        super_tft_hit_cache_miss,
        super_tft_miss,
        base_page,
        super_tft_miss_l1_miss,
        sweeps,
        swept_lines,
    } = *s;
    e.u(&format!("{p}.super_tft_hit_cache_hit"), super_tft_hit_cache_hit);
    e.u(
        &format!("{p}.super_tft_hit_cache_miss"),
        super_tft_hit_cache_miss,
    );
    e.u(&format!("{p}.super_tft_miss"), super_tft_miss);
    e.u(&format!("{p}.base_page"), base_page);
    e.u(&format!("{p}.super_tft_miss_l1_miss"), super_tft_miss_l1_miss);
    e.u(&format!("{p}.sweeps"), sweeps);
    e.u(&format!("{p}.swept_lines"), swept_lines);
}

fn dec_seesaw(d: &Dec, p: &str) -> Result<SeesawStats, DecErr> {
    Ok(SeesawStats {
        super_tft_hit_cache_hit: d.u(&format!("{p}.super_tft_hit_cache_hit"))?,
        super_tft_hit_cache_miss: d.u(&format!("{p}.super_tft_hit_cache_miss"))?,
        super_tft_miss: d.u(&format!("{p}.super_tft_miss"))?,
        base_page: d.u(&format!("{p}.base_page"))?,
        super_tft_miss_l1_miss: d.u(&format!("{p}.super_tft_miss_l1_miss"))?,
        sweeps: d.u(&format!("{p}.sweeps"))?,
        swept_lines: d.u(&format!("{p}.swept_lines"))?,
    })
}

fn enc_tft(e: &mut Enc, p: &str, t: &TftStats) {
    let TftStats {
        hits,
        misses,
        fills,
        invalidations,
        flushes,
    } = *t;
    e.u(&format!("{p}.hits"), hits);
    e.u(&format!("{p}.misses"), misses);
    e.u(&format!("{p}.fills"), fills);
    e.u(&format!("{p}.invalidations"), invalidations);
    e.u(&format!("{p}.flushes"), flushes);
}

fn dec_tft(d: &Dec, p: &str) -> Result<TftStats, DecErr> {
    Ok(TftStats {
        hits: d.u(&format!("{p}.hits"))?,
        misses: d.u(&format!("{p}.misses"))?,
        fills: d.u(&format!("{p}.fills"))?,
        invalidations: d.u(&format!("{p}.invalidations"))?,
        flushes: d.u(&format!("{p}.flushes"))?,
    })
}

fn enc_energy(e: &mut Enc, p: &str, en: &EnergyBreakdown) {
    let EnergyBreakdown {
        l1_cpu_nj,
        l1_coherence_nj,
        l1_fill_nj,
        translation_nj,
        tft_nj,
        outer_cache_nj,
        dram_nj,
        leakage_nj,
    } = *en;
    e.f(&format!("{p}.l1_cpu_nj"), l1_cpu_nj);
    e.f(&format!("{p}.l1_coherence_nj"), l1_coherence_nj);
    e.f(&format!("{p}.l1_fill_nj"), l1_fill_nj);
    e.f(&format!("{p}.translation_nj"), translation_nj);
    e.f(&format!("{p}.tft_nj"), tft_nj);
    e.f(&format!("{p}.outer_cache_nj"), outer_cache_nj);
    e.f(&format!("{p}.dram_nj"), dram_nj);
    e.f(&format!("{p}.leakage_nj"), leakage_nj);
}

fn dec_energy(d: &Dec, p: &str) -> Result<EnergyBreakdown, DecErr> {
    Ok(EnergyBreakdown {
        l1_cpu_nj: d.f(&format!("{p}.l1_cpu_nj"))?,
        l1_coherence_nj: d.f(&format!("{p}.l1_coherence_nj"))?,
        l1_fill_nj: d.f(&format!("{p}.l1_fill_nj"))?,
        translation_nj: d.f(&format!("{p}.translation_nj"))?,
        tft_nj: d.f(&format!("{p}.tft_nj"))?,
        outer_cache_nj: d.f(&format!("{p}.outer_cache_nj"))?,
        dram_nj: d.f(&format!("{p}.dram_nj"))?,
        leakage_nj: d.f(&format!("{p}.leakage_nj"))?,
    })
}

fn enc_hist(e: &mut Enc, p: &str, h: &Log2Histogram) {
    e.u(&format!("{p}.count"), h.count());
    e.u(&format!("{p}.sum"), h.sum());
    let buckets: Vec<String> = h.buckets().iter().map(u64::to_string).collect();
    e.line(&format!("{p}.buckets"), buckets.join(","));
}

fn dec_hist(d: &Dec, p: &str) -> Result<Log2Histogram, DecErr> {
    let count = d.u(&format!("{p}.count"))?;
    let sum = d.u(&format!("{p}.sum"))?;
    let raw = d.raw(&format!("{p}.buckets"))?;
    let mut buckets = [0u64; Log2Histogram::BUCKETS];
    let mut n = 0;
    for (i, part) in raw.split(',').enumerate() {
        if i >= buckets.len() {
            return Err(format!("key {p:?}.buckets: too many buckets"));
        }
        buckets[i] = part
            .parse()
            .map_err(|_| format!("key {p:?}.buckets: bad integer"))?;
        n = i + 1;
    }
    if n != buckets.len() {
        return Err(format!("key {p:?}.buckets: expected {} buckets", buckets.len()));
    }
    Ok(Log2Histogram::from_parts(buckets, count, sum))
}

fn enc_injection(e: &mut Enc, p: &str, s: &InjectionStats) {
    let InjectionStats {
        splinters,
        promotions,
        shootdowns,
        tft_storms,
        context_switches,
        mem_pressure,
        mem_releases,
    } = *s;
    e.u(&format!("{p}.splinters"), splinters);
    e.u(&format!("{p}.promotions"), promotions);
    e.u(&format!("{p}.shootdowns"), shootdowns);
    e.u(&format!("{p}.tft_storms"), tft_storms);
    e.u(&format!("{p}.context_switches"), context_switches);
    e.u(&format!("{p}.mem_pressure"), mem_pressure);
    e.u(&format!("{p}.mem_releases"), mem_releases);
}

fn dec_injection(d: &Dec, p: &str) -> Result<InjectionStats, DecErr> {
    Ok(InjectionStats {
        splinters: d.u(&format!("{p}.splinters"))?,
        promotions: d.u(&format!("{p}.promotions"))?,
        shootdowns: d.u(&format!("{p}.shootdowns"))?,
        tft_storms: d.u(&format!("{p}.tft_storms"))?,
        context_switches: d.u(&format!("{p}.context_switches"))?,
        mem_pressure: d.u(&format!("{p}.mem_pressure"))?,
        mem_releases: d.u(&format!("{p}.mem_releases"))?,
    })
}

fn enc_checker(e: &mut Enc, p: &str, c: &CheckerSummary) {
    let CheckerSummary {
        loads_checked,
        stores_tracked,
        audits,
        violations,
    } = *c;
    e.u(&format!("{p}.loads_checked"), loads_checked);
    e.u(&format!("{p}.stores_tracked"), stores_tracked);
    e.u(&format!("{p}.audits"), audits);
    let seesaw_check::ViolationCounters {
        stale_translation,
        tft_claims_base_page,
        data_divergence,
        use_after_free,
        swept_line_resident,
        partition_unreachable,
        stale_physical_mapping,
        way_prediction_alias,
    } = violations;
    e.u(&format!("{p}.v.stale_translation"), stale_translation);
    e.u(&format!("{p}.v.tft_claims_base_page"), tft_claims_base_page);
    e.u(&format!("{p}.v.data_divergence"), data_divergence);
    e.u(&format!("{p}.v.use_after_free"), use_after_free);
    e.u(&format!("{p}.v.swept_line_resident"), swept_line_resident);
    e.u(&format!("{p}.v.partition_unreachable"), partition_unreachable);
    e.u(&format!("{p}.v.stale_physical_mapping"), stale_physical_mapping);
    e.u(&format!("{p}.v.way_prediction_alias"), way_prediction_alias);
}

fn dec_checker(d: &Dec, p: &str) -> Result<CheckerSummary, DecErr> {
    Ok(CheckerSummary {
        loads_checked: d.u(&format!("{p}.loads_checked"))?,
        stores_tracked: d.u(&format!("{p}.stores_tracked"))?,
        audits: d.u(&format!("{p}.audits"))?,
        violations: seesaw_check::ViolationCounters {
            stale_translation: d.u(&format!("{p}.v.stale_translation"))?,
            tft_claims_base_page: d.u(&format!("{p}.v.tft_claims_base_page"))?,
            data_divergence: d.u(&format!("{p}.v.data_divergence"))?,
            use_after_free: d.u(&format!("{p}.v.use_after_free"))?,
            swept_line_resident: d.u(&format!("{p}.v.swept_line_resident"))?,
            partition_unreachable: d.u(&format!("{p}.v.partition_unreachable"))?,
            stale_physical_mapping: d.u(&format!("{p}.v.stale_physical_mapping"))?,
            // Absent from records persisted before the way-prediction
            // invariant existed; treat those as zero rather than refusing
            // to resume the sweep.
            way_prediction_alias: d.u(&format!("{p}.v.way_prediction_alias")).unwrap_or(0),
        },
    })
}

fn enc_coherence(e: &mut Enc, p: &str, c: &CoherenceStats) {
    let CoherenceStats {
        transactions,
        probes_delivered,
        probe_ways,
        invalidations,
        writebacks,
    } = *c;
    e.u(&format!("{p}.transactions"), transactions);
    e.u(&format!("{p}.probes_delivered"), probes_delivered);
    e.u(&format!("{p}.probe_ways"), probe_ways);
    e.u(&format!("{p}.invalidations"), invalidations);
    e.u(&format!("{p}.writebacks"), writebacks);
}

fn dec_coherence(d: &Dec, p: &str) -> Result<CoherenceStats, DecErr> {
    Ok(CoherenceStats {
        transactions: d.u(&format!("{p}.transactions"))?,
        probes_delivered: d.u(&format!("{p}.probes_delivered"))?,
        probe_ways: d.u(&format!("{p}.probe_ways"))?,
        invalidations: d.u(&format!("{p}.invalidations"))?,
        writebacks: d.u(&format!("{p}.writebacks"))?,
    })
}

fn enc_samples(e: &mut Enc, p: &str, samples: &[Sample]) {
    e.u(&format!("{p}.len"), samples.len() as u64);
    for (i, s) in samples.iter().enumerate() {
        let Sample {
            instructions,
            cpi,
            mpki,
            tft_hit_rate,
            walk_mpki,
            ways_per_access,
        } = *s;
        let q = format!("{p}.{i}");
        e.u(&format!("{q}.instructions"), instructions);
        e.f(&format!("{q}.cpi"), cpi);
        e.f(&format!("{q}.mpki"), mpki);
        e.f(&format!("{q}.tft_hit_rate"), tft_hit_rate);
        e.f(&format!("{q}.walk_mpki"), walk_mpki);
        e.f(&format!("{q}.ways_per_access"), ways_per_access);
    }
}

fn dec_samples(d: &Dec, p: &str) -> Result<Vec<Sample>, DecErr> {
    let len = d.u(&format!("{p}.len"))? as usize;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let q = format!("{p}.{i}");
        out.push(Sample {
            instructions: d.u(&format!("{q}.instructions"))?,
            cpi: d.f(&format!("{q}.cpi"))?,
            mpki: d.f(&format!("{q}.mpki"))?,
            tft_hit_rate: d.f(&format!("{q}.tft_hit_rate"))?,
            walk_mpki: d.f(&format!("{q}.walk_mpki"))?,
            ways_per_access: d.f(&format!("{q}.ways_per_access"))?,
        });
    }
    Ok(out)
}

fn enc_metrics(e: &mut Enc, p: &str, m: &MetricsRegistry) {
    e.u(&format!("{p}.len"), m.len() as u64);
    for (key, value) in m.iter() {
        match value {
            MetricValue::U64(v) => e.line(&format!("{p}.k.{key}"), format_args!("u{v}")),
            MetricValue::F64(v) => e.line(&format!("{p}.k.{key}"), format_args!("f{:016x}", v.to_bits())),
        }
    }
}

fn dec_metrics(d: &Dec, p: &str) -> Result<MetricsRegistry, DecErr> {
    let len = d.u(&format!("{p}.len"))? as usize;
    let prefix = format!("{p}.k.");
    let mut out = MetricsRegistry::new();
    for (k, v) in &d.map {
        let Some(key) = k.strip_prefix(prefix.as_str()) else {
            continue;
        };
        if let Some(hex) = v.strip_prefix('f') {
            let bits = u64::from_str_radix(hex, 16)
                .map_err(|_| format!("metric {key:?}: bad float bits"))?;
            out.set_f64(key, f64::from_bits(bits));
        } else if let Some(dec) = v.strip_prefix('u') {
            let n: u64 = dec
                .parse()
                .map_err(|_| format!("metric {key:?}: bad integer"))?;
            out.set_u64(key, n);
        } else {
            return Err(format!("metric {key:?}: unknown value tag"));
        }
    }
    if out.len() != len {
        return Err(format!(
            "metrics: expected {len} keys, decoded {}",
            out.len()
        ));
    }
    Ok(out)
}

fn enc_core(e: &mut Enc, p: &str, c: &CoreResult) {
    let CoreResult {
        core,
        totals,
        l1,
        tlb_l1,
        walks,
        seesaw,
        tft,
        coherence_probes,
        superpage_ref_fraction,
        way_prediction_accuracy,
        faults,
        checker,
        samples,
    } = c;
    e.u(&format!("{p}.core"), *core as u64);
    enc_totals(e, &format!("{p}.totals"), totals);
    enc_cache(e, &format!("{p}.l1"), l1);
    enc_tlb(e, &format!("{p}.tlb_l1"), tlb_l1);
    e.u(&format!("{p}.walks"), *walks);
    enc_seesaw(e, &format!("{p}.seesaw"), seesaw);
    enc_tft(e, &format!("{p}.tft"), tft);
    e.u(&format!("{p}.coherence_probes"), *coherence_probes);
    e.f(&format!("{p}.superpage_ref_fraction"), *superpage_ref_fraction);
    e.opt_f(&format!("{p}.way_prediction_accuracy"), *way_prediction_accuracy);
    match faults {
        Some(f) => {
            e.line(&format!("{p}.faults"), "some");
            enc_injection(e, &format!("{p}.faults"), f);
        }
        None => e.line(&format!("{p}.faults"), "none"),
    }
    match checker {
        Some(c) => {
            e.line(&format!("{p}.checker"), "some");
            enc_checker(e, &format!("{p}.checker"), c);
        }
        None => e.line(&format!("{p}.checker"), "none"),
    }
    enc_samples(e, &format!("{p}.samples"), samples);
}

fn dec_core(d: &Dec, p: &str) -> Result<CoreResult, DecErr> {
    Ok(CoreResult {
        core: d.u(&format!("{p}.core"))? as usize,
        totals: dec_totals(d, &format!("{p}.totals"))?,
        l1: dec_cache(d, &format!("{p}.l1"))?,
        tlb_l1: dec_tlb(d, &format!("{p}.tlb_l1"))?,
        walks: d.u(&format!("{p}.walks"))?,
        seesaw: dec_seesaw(d, &format!("{p}.seesaw"))?,
        tft: dec_tft(d, &format!("{p}.tft"))?,
        coherence_probes: d.u(&format!("{p}.coherence_probes"))?,
        superpage_ref_fraction: d.f(&format!("{p}.superpage_ref_fraction"))?,
        way_prediction_accuracy: d.opt_f(&format!("{p}.way_prediction_accuracy"))?,
        faults: match d.raw(&format!("{p}.faults"))? {
            "none" => None,
            _ => Some(dec_injection(d, &format!("{p}.faults"))?),
        },
        checker: match d.raw(&format!("{p}.checker"))? {
            "none" => None,
            _ => Some(dec_checker(d, &format!("{p}.checker"))?),
        },
        samples: dec_samples(d, &format!("{p}.samples"))?,
    })
}

/// Serializes a result payload; `None` when the result carries a trace
/// (not persisted — see the module docs). The exhaustive destructuring
/// is deliberate: adding a field to `RunResult` breaks this function at
/// compile time, forcing the codec — both directions — to learn it.
fn encode_result(fingerprint: &str, r: &RunResult) -> Option<String> {
    let RunResult {
        totals,
        runtime_ns,
        energy,
        l1,
        l1_mpki,
        tlb_l1,
        walks,
        seesaw,
        tft,
        superpage_coverage,
        superpage_ref_fraction,
        way_prediction_accuracy,
        coherence_probes,
        demotions,
        faults,
        checker,
        samples,
        walk_latency,
        miss_penalty,
        metrics,
        trace,
        coherence,
        cores,
    } = r;
    if trace.is_some() {
        return None;
    }
    let mut e = Enc::new(fingerprint);
    enc_totals(&mut e, "totals", totals);
    e.f("runtime_ns", *runtime_ns);
    enc_energy(&mut e, "energy", energy);
    enc_cache(&mut e, "l1", l1);
    e.f("l1_mpki", *l1_mpki);
    enc_tlb(&mut e, "tlb_l1", tlb_l1);
    e.u("walks", *walks);
    enc_seesaw(&mut e, "seesaw", seesaw);
    enc_tft(&mut e, "tft", tft);
    e.f("superpage_coverage", *superpage_coverage);
    e.f("superpage_ref_fraction", *superpage_ref_fraction);
    e.opt_f("way_prediction_accuracy", *way_prediction_accuracy);
    e.u("coherence_probes", *coherence_probes);
    e.u("demotions", *demotions);
    match faults {
        Some(f) => {
            e.line("faults", "some");
            enc_injection(&mut e, "faults", f);
        }
        None => e.line("faults", "none"),
    }
    match checker {
        Some(c) => {
            e.line("checker", "some");
            enc_checker(&mut e, "checker", c);
        }
        None => e.line("checker", "none"),
    }
    enc_samples(&mut e, "samples", samples);
    enc_hist(&mut e, "walk_latency", walk_latency);
    enc_hist(&mut e, "miss_penalty", miss_penalty);
    enc_metrics(&mut e, "metrics", metrics);
    match coherence {
        Some(c) => {
            e.line("coherence", "some");
            enc_coherence(&mut e, "coherence", c);
        }
        None => e.line("coherence", "none"),
    }
    e.u("cores.len", cores.len() as u64);
    for (i, c) in cores.iter().enumerate() {
        enc_core(&mut e, &format!("cores.{i}"), c);
    }
    Some(e.out)
}

/// Rebuilds a result from a payload. `Ok(None)` when the payload belongs
/// to a different fingerprint (digest collision).
fn decode_result(payload: &str, fingerprint: &str) -> Result<Option<RunResult>, DecErr> {
    let d = Dec::new(payload);
    if d.s("fingerprint")? != fingerprint {
        return Ok(None);
    }
    let cores_len = d.u("cores.len")? as usize;
    let mut cores = Vec::with_capacity(cores_len);
    for i in 0..cores_len {
        cores.push(dec_core(&d, &format!("cores.{i}"))?);
    }
    Ok(Some(RunResult {
        totals: dec_totals(&d, "totals")?,
        runtime_ns: d.f("runtime_ns")?,
        energy: dec_energy(&d, "energy")?,
        l1: dec_cache(&d, "l1")?,
        l1_mpki: d.f("l1_mpki")?,
        tlb_l1: dec_tlb(&d, "tlb_l1")?,
        walks: d.u("walks")?,
        seesaw: dec_seesaw(&d, "seesaw")?,
        tft: dec_tft(&d, "tft")?,
        superpage_coverage: d.f("superpage_coverage")?,
        superpage_ref_fraction: d.f("superpage_ref_fraction")?,
        way_prediction_accuracy: d.opt_f("way_prediction_accuracy")?,
        coherence_probes: d.u("coherence_probes")?,
        demotions: d.u("demotions")?,
        faults: match d.raw("faults")? {
            "none" => None,
            _ => Some(dec_injection(&d, "faults")?),
        },
        checker: match d.raw("checker")? {
            "none" => None,
            _ => Some(dec_checker(&d, "checker")?),
        },
        samples: dec_samples(&d, "samples")?,
        walk_latency: dec_hist(&d, "walk_latency")?,
        miss_penalty: dec_hist(&d, "miss_penalty")?,
        metrics: dec_metrics(&d, "metrics")?,
        trace: None,
        coherence: match d.raw("coherence")? {
            "none" => None,
            _ => Some(dec_coherence(&d, "coherence")?),
        },
        cores,
    }))
}

fn encode_failure(fingerprint: &str, v: &Violation) -> String {
    let mut e = Enc::new(fingerprint);
    e.s("violation.kind", v.kind.name());
    e.u("violation.instruction", v.instruction);
    e.s("violation.detail", &v.detail);
    match &v.autosaved {
        Some(path) => e.s("bundle.path", &path.to_string_lossy()),
        None => e.line("bundle.path", "none"),
    }
    e.out
}

fn decode_failure(payload: &str, fingerprint: &str) -> Result<Option<SimError>, DecErr> {
    let d = Dec::new(payload);
    if d.s("fingerprint")? != fingerprint {
        return Ok(None);
    }
    let kind_name = d.s("violation.kind")?;
    let kind = ViolationKind::from_name(&kind_name)
        .ok_or_else(|| format!("unknown violation kind {kind_name:?}"))?;
    let autosaved = match d.raw("bundle.path")? {
        "none" => None,
        raw => Some(PathBuf::from(unesc(raw))),
    };
    // Rehydrate the full bundle from its autosaved file when it is still
    // readable; a moved or deleted bundle degrades to `repro: None`.
    let repro = autosaved
        .as_ref()
        .and_then(|p| fs::read_to_string(p).ok())
        .and_then(|text| ReproBundle::from_json(&text).ok())
        .map(Box::new);
    Ok(Some(SimError::Check(Box::new(Violation {
        kind,
        instruction: d.u("violation.instruction")?,
        detail: d.s("violation.detail")?,
        history: Vec::new(),
        repro,
        autosaved,
    }))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::fingerprint;
    use crate::{RunConfig, System};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "seesaw-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        let a = digest("config-a");
        assert_eq!(a, digest("config-a"));
        assert_ne!(a, digest("config-b"));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn result_round_trips_bit_exactly() {
        let cfg = RunConfig::quick("astar").instructions(40_000);
        let result = System::build(&cfg).unwrap().run().unwrap();
        let fp = fingerprint(&cfg);
        let payload = encode_result(&fp, &result).expect("untraced result encodes");
        let back = decode_result(&payload, &fp).unwrap().expect("fp matches");
        assert_eq!(result.totals.cycles, back.totals.cycles);
        assert_eq!(result.runtime_ns.to_bits(), back.runtime_ns.to_bits());
        assert_eq!(
            result.energy.total_nj().to_bits(),
            back.energy.total_nj().to_bits()
        );
        assert_eq!(result.metrics.len(), back.metrics.len());
        // The codec is injective on its own output: re-encoding the
        // decoded value reproduces the payload byte for byte.
        assert_eq!(payload, encode_result(&fp, &back).unwrap());
        // A different fingerprint is a collision, not a wrong answer.
        assert!(decode_result(&payload, "other").unwrap().is_none());
    }

    #[test]
    fn traced_results_are_not_persisted() {
        let cfg = RunConfig::quick("astar").instructions(30_000).with_trace();
        let result = System::build(&cfg).unwrap().run().unwrap();
        assert!(encode_result(&fingerprint(&cfg), &result).is_none());
        let store = Store::open(tmp_dir("traced")).unwrap();
        store.put_result(&fingerprint(&cfg), &result);
        assert_eq!(store.stats().traced_skipped, 1);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn store_get_put_and_corruption_tolerance() {
        let cfg = RunConfig::quick("gups").instructions(30_000);
        let result = System::build(&cfg).unwrap().run().unwrap();
        let fp = fingerprint(&cfg);
        let store = Store::open(tmp_dir("corrupt")).unwrap();
        assert!(store.get(&fp).is_none());
        store.put_result(&fp, &result);
        assert_eq!(store.len(), 1);
        let Some(StoredOutcome::Result(back)) = store.get(&fp) else {
            panic!("expected a stored result");
        };
        assert_eq!(result.totals.cycles, back.totals.cycles);
        assert_eq!((1, 0), store.verify());

        // Truncate the record: the store must skip it, not panic.
        let rec = store.dir().join(format!("r-{}.rec", digest(&fp)));
        let bytes = fs::read(&rec).unwrap();
        fs::write(&rec, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.get(&fp).is_none());
        assert!(store.stats().corrupt >= 1);
        assert_eq!((0, 1), store.verify());

        // Garble the payload under an intact header: checksum catches it.
        let mut garbled = bytes.clone();
        let n = garbled.len();
        garbled[n - 20] ^= 0xff;
        fs::write(&rec, &garbled).unwrap();
        assert!(store.get(&fp).is_none());

        // Rewriting (the resumed sweep's fresh simulation) repairs it.
        store.put_result(&fp, &result);
        assert!(matches!(store.get(&fp), Some(StoredOutcome::Result(_))));
        assert_eq!((1, 0), store.verify());
        assert!(store
            .dir()
            .join("journal.log")
            .exists());
        let _ = fs::remove_dir_all(store.dir());
    }
}
