//! Energy accounting: accumulates per-event energies into the breakdown
//! the paper reports (CPU-side vs coherence, Fig. 11; whole hierarchy,
//! Fig. 10).

use seesaw_trace::{Collect, MetricsRegistry};

use crate::EnergyModel;

/// Accumulated energy, in nJ, split by source.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 dynamic energy from CPU-side lookups.
    pub l1_cpu_nj: f64,
    /// L1 dynamic energy from coherence lookups.
    pub l1_coherence_nj: f64,
    /// L1 fill energy.
    pub l1_fill_nj: f64,
    /// TLB + page-walk energy.
    pub translation_nj: f64,
    /// TFT lookup energy (SEESAW only).
    pub tft_nj: f64,
    /// L2 + LLC dynamic energy.
    pub outer_cache_nj: f64,
    /// DRAM access energy.
    pub dram_nj: f64,
    /// Leakage over the run.
    pub leakage_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_nj(&self) -> f64 {
        self.l1_cpu_nj
            + self.l1_coherence_nj
            + self.l1_fill_nj
            + self.translation_nj
            + self.tft_nj
            + self.outer_cache_nj
            + self.dram_nj
            + self.leakage_nj
    }

    /// Fraction of a saving versus `baseline` attributable to coherence
    /// lookups (Fig. 11's split). Returns `(cpu_side, coherence)` shares
    /// of the total saving, each in `[0, 1]`.
    pub fn savings_split(&self, baseline: &EnergyBreakdown) -> (f64, f64) {
        let coh_saving = baseline.l1_coherence_nj - self.l1_coherence_nj;
        let total_saving = baseline.total_nj() - self.total_nj();
        if total_saving <= 0.0 {
            return (0.0, 0.0);
        }
        let coh = (coh_saving / total_saving).clamp(0.0, 1.0);
        (1.0 - coh, coh)
    }
}

impl Collect for EnergyBreakdown {
    fn collect(&self, prefix: &str, out: &mut MetricsRegistry) {
        let EnergyBreakdown {
            l1_cpu_nj,
            l1_coherence_nj,
            l1_fill_nj,
            translation_nj,
            tft_nj,
            outer_cache_nj,
            dram_nj,
            leakage_nj,
        } = *self;
        out.set_f64(&format!("{prefix}.l1_cpu_nj"), l1_cpu_nj);
        out.set_f64(&format!("{prefix}.l1_coherence_nj"), l1_coherence_nj);
        out.set_f64(&format!("{prefix}.l1_fill_nj"), l1_fill_nj);
        out.set_f64(&format!("{prefix}.translation_nj"), translation_nj);
        out.set_f64(&format!("{prefix}.tft_nj"), tft_nj);
        out.set_f64(&format!("{prefix}.outer_cache_nj"), outer_cache_nj);
        out.set_f64(&format!("{prefix}.dram_nj"), dram_nj);
        out.set_f64(&format!("{prefix}.leakage_nj"), leakage_nj);
        out.set_f64(&format!("{prefix}.total_nj"), self.total_nj());
    }
}

/// Accumulates events against an [`EnergyModel`] for one L1 configuration.
///
/// # Example
/// ```
/// use seesaw_energy::{EnergyAccount, EnergyModel, SramModel};
/// let model = EnergyModel::new(SramModel::tsmc28_scaled_22nm());
/// let mut acct = EnergyAccount::new(model, 32, 8);
/// acct.cpu_lookup(8);
/// acct.cpu_lookup(4);
/// let breakdown = acct.finish(1000.0);
/// assert!(breakdown.l1_cpu_nj > 0.0);
/// assert!(breakdown.leakage_nj > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyAccount {
    model: EnergyModel,
    l1_size_kb: u64,
    l1_ways: usize,
    acc: EnergyBreakdown,
}

impl EnergyAccount {
    /// Creates an account for an L1 of the given geometry.
    pub fn new(model: EnergyModel, l1_size_kb: u64, l1_ways: usize) -> Self {
        Self {
            model,
            l1_size_kb,
            l1_ways,
            acc: EnergyBreakdown::default(),
        }
    }

    /// A CPU-side L1 lookup probing `ways_probed` ways.
    ///
    /// `ways_probed` may exceed the cache's associativity when one
    /// access takes several probe rounds — a µtag alias pays a discarded
    /// single-way probe plus a full-set round, and VESPA base-page
    /// accesses pay the full set plus the wasted narrow probe. Each
    /// full-associativity chunk is charged as its own round.
    pub fn cpu_lookup(&mut self, mut ways_probed: usize) {
        while ways_probed > self.l1_ways {
            self.acc.l1_cpu_nj +=
                self.model
                    .l1_lookup_nj(self.l1_size_kb, self.l1_ways, self.l1_ways);
            ways_probed -= self.l1_ways;
        }
        self.acc.l1_cpu_nj += self
            .model
            .l1_lookup_nj(self.l1_size_kb, self.l1_ways, ways_probed);
    }

    /// A coherence L1 lookup probing `ways_probed` ways.
    pub fn coherence_lookup(&mut self, ways_probed: usize) {
        self.acc.l1_coherence_nj += self
            .model
            .l1_lookup_nj(self.l1_size_kb, self.l1_ways, ways_probed);
    }

    /// An L1 line fill.
    pub fn l1_fill(&mut self) {
        self.acc.l1_fill_nj += self.model.costs().l1_fill_nj;
    }

    /// An L1 TLB lookup.
    pub fn tlb_l1(&mut self) {
        self.acc.translation_nj += self.model.costs().tlb_l1_nj;
    }

    /// An L2 TLB lookup.
    pub fn tlb_l2(&mut self) {
        self.acc.translation_nj += self.model.costs().tlb_l2_nj;
    }

    /// A page-table walk.
    pub fn page_walk(&mut self) {
        self.acc.translation_nj += self.model.costs().walk_nj;
    }

    /// A TFT lookup.
    pub fn tft_lookup(&mut self) {
        self.acc.tft_nj += self.model.costs().tft_nj;
    }

    /// An L2 cache access.
    pub fn l2_access(&mut self) {
        self.acc.outer_cache_nj += self.model.costs().l2_nj;
    }

    /// An LLC access.
    pub fn llc_access(&mut self) {
        self.acc.outer_cache_nj += self.model.costs().llc_nj;
    }

    /// A DRAM access.
    pub fn dram_access(&mut self) {
        self.acc.dram_nj += self.model.costs().dram_nj;
    }

    /// Finalizes the account, charging leakage for the run's duration.
    pub fn finish(self, runtime_ns: f64) -> EnergyBreakdown {
        self.finish_many(runtime_ns, 1)
    }

    /// Finalizes a multi-core account: dynamic energy has accumulated
    /// across all cores already, but leakage scales with the number of
    /// L1 instances powered for the run's duration. `finish_many(ns, 1)`
    /// is bit-identical to [`EnergyAccount::finish`].
    pub fn finish_many(mut self, runtime_ns: f64, l1_instances: u64) -> EnergyBreakdown {
        self.acc.leakage_nj =
            self.model.l1_leakage_nj(self.l1_size_kb, runtime_ns) * l1_instances as f64;
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SramModel;

    fn model() -> EnergyModel {
        EnergyModel::new(SramModel::tsmc28_scaled_22nm())
    }

    #[test]
    fn narrower_lookups_cost_less_energy() {
        let mut wide = EnergyAccount::new(model(), 32, 8);
        let mut narrow = EnergyAccount::new(model(), 32, 8);
        for _ in 0..100 {
            wide.cpu_lookup(8);
            narrow.cpu_lookup(4);
        }
        let (w, n) = (wide.finish(0.0), narrow.finish(0.0));
        let saving = 1.0 - n.l1_cpu_nj / w.l1_cpu_nj;
        assert!((0.39..0.40).contains(&saving), "saving {saving}");
    }

    #[test]
    fn savings_split_attributes_coherence() {
        let mut base = EnergyAccount::new(model(), 32, 8);
        let mut seesaw = EnergyAccount::new(model(), 32, 8);
        for _ in 0..100 {
            base.cpu_lookup(8);
            base.coherence_lookup(8);
            seesaw.cpu_lookup(4);
            seesaw.coherence_lookup(4);
        }
        let (b, s) = (base.finish(0.0), seesaw.finish(0.0));
        let (cpu, coh) = s.savings_split(&b);
        assert!((cpu - 0.5).abs() < 1e-9, "equal lookups → 50/50, got {cpu}");
        assert!((coh - 0.5).abs() < 1e-9);
    }

    #[test]
    fn total_sums_all_components() {
        let mut acct = EnergyAccount::new(model(), 64, 16);
        acct.cpu_lookup(16);
        acct.l1_fill();
        acct.tlb_l1();
        acct.tlb_l2();
        acct.page_walk();
        acct.tft_lookup();
        acct.l2_access();
        acct.llc_access();
        acct.dram_access();
        let b = acct.finish(500.0);
        let manual = b.l1_cpu_nj
            + b.l1_coherence_nj
            + b.l1_fill_nj
            + b.translation_nj
            + b.tft_nj
            + b.outer_cache_nj
            + b.dram_nj
            + b.leakage_nj;
        assert!((b.total_nj() - manual).abs() < 1e-12);
        assert!(b.dram_nj > b.outer_cache_nj, "one DRAM access dominates");
    }

    #[test]
    fn no_saving_yields_zero_split() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.savings_split(&b), (0.0, 0.0));
    }

    #[test]
    fn faster_run_leaks_less() {
        let acct = |ns: f64| EnergyAccount::new(model(), 32, 8).finish(ns);
        assert!(acct(1000.0).leakage_nj < acct(2000.0).leakage_nj);
    }
}
