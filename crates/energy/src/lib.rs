//! SRAM latency/energy models and memory-hierarchy energy accounting for
//! the SEESAW reproduction.
//!
//! The paper drives its evaluation with numbers from a TSMC 28 nm SRAM
//! compiler scaled to 22 nm (§III-B, Table III): cache access latency and
//! lookup energy as a function of capacity and associativity. We pin an
//! analytical model to the paper's reported values — Table III's cycle
//! counts at 1.33/2.80/4.00 GHz, the +10–25 % latency and +40–50 % energy
//! growth per associativity doubling (Fig. 2b/2c), and the 39.43 %
//! energy saving of a 4-way SEESAW lookup versus an 8-way baseline lookup
//! (§IV-A4) — then account whole-hierarchy energy from event counts.
//!
//! # Example
//!
//! ```
//! use seesaw_energy::SramModel;
//!
//! let sram = SramModel::tsmc28_scaled_22nm();
//! // Table III: a 32 KB 8-way lookup takes 2 cycles at 1.33 GHz…
//! assert_eq!(sram.full_lookup_cycles(32, 8, 1.33), 2);
//! // …while a SEESAW superpage lookup (one 4-way partition) takes 1.
//! assert_eq!(sram.partition_lookup_cycles(32, 8, 2, 1.33), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod model;
mod sram;

pub use account::{EnergyAccount, EnergyBreakdown};
pub use model::{EnergyModel, EventCosts};
pub use sram::SramModel;
