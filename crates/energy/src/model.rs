//! Per-event energy costs for the whole memory hierarchy.

use crate::SramModel;

/// Energy cost of each countable event, in nJ. These are typical 22 nm
/// magnitudes chosen so the relative weights (L1 ≪ L2 ≪ LLC ≪ DRAM,
/// TFT ≪ TLB ≪ L1) match the structures' sizes; the paper's results are
/// ratios, which depend on these relative weights rather than absolutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventCosts {
    /// One L1 TLB lookup (all split TLBs probed in parallel).
    pub tlb_l1_nj: f64,
    /// One L2 TLB lookup.
    pub tlb_l2_nj: f64,
    /// One page-table walk (several cached memory references).
    pub walk_nj: f64,
    /// One TFT lookup (16 entries, 86 bytes — "roughly the size of an
    /// 8-entry L1 TLB", §IV-A2).
    pub tft_nj: f64,
    /// One L2 cache access.
    pub l2_nj: f64,
    /// One LLC access.
    pub llc_nj: f64,
    /// One DRAM access.
    pub dram_nj: f64,
    /// One L1 line fill (victim selection + array write).
    pub l1_fill_nj: f64,
}

impl Default for EventCosts {
    fn default() -> Self {
        Self {
            tlb_l1_nj: 0.004,
            tlb_l2_nj: 0.025,
            walk_nj: 0.30,
            tft_nj: 0.0006,
            l2_nj: 0.18,
            llc_nj: 0.90,
            dram_nj: 18.0,
            l1_fill_nj: 0.020,
        }
    }
}

/// The complete energy model: SRAM lookup tables plus event costs.
///
/// # Example
/// ```
/// use seesaw_energy::{EnergyModel, SramModel};
/// let model = EnergyModel::new(SramModel::tsmc28_scaled_22nm());
/// let eight = model.l1_lookup_nj(32, 8, 8);
/// let four = model.l1_lookup_nj(32, 8, 4);
/// assert!(four < eight);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    sram: SramModel,
    costs: EventCosts,
}

impl EnergyModel {
    /// Builds the model with default event costs.
    pub fn new(sram: SramModel) -> Self {
        Self {
            sram,
            costs: EventCosts::default(),
        }
    }

    /// Builds the model with custom event costs.
    pub fn with_costs(sram: SramModel, costs: EventCosts) -> Self {
        Self { sram, costs }
    }

    /// The SRAM sub-model.
    pub fn sram(&self) -> &SramModel {
        &self.sram
    }

    /// The event cost table.
    pub fn costs(&self) -> &EventCosts {
        &self.costs
    }

    /// Energy of an L1 lookup probing `ways_probed` of `total_ways`.
    pub fn l1_lookup_nj(&self, size_kb: u64, total_ways: usize, ways_probed: usize) -> f64 {
        self.sram.lookup_energy_nj(size_kb, total_ways, ways_probed)
    }

    /// L1 leakage energy over `nanoseconds` of runtime, in nJ.
    pub fn l1_leakage_nj(&self, size_kb: u64, nanoseconds: f64) -> f64 {
        // mW × ns = pJ; divide by 1000 for nJ.
        self.sram.leakage_mw(size_kb) * nanoseconds / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_ordered_by_structure_size() {
        let c = EventCosts::default();
        assert!(c.tft_nj < c.tlb_l1_nj);
        assert!(c.tlb_l1_nj < c.tlb_l2_nj);
        assert!(c.l2_nj < c.llc_nj);
        assert!(c.llc_nj < c.dram_nj);
    }

    #[test]
    fn leakage_accumulates_with_time() {
        let m = EnergyModel::new(SramModel::tsmc28_scaled_22nm());
        let one_us = m.l1_leakage_nj(32, 1000.0);
        let two_us = m.l1_leakage_nj(32, 2000.0);
        assert!((two_us - 2.0 * one_us).abs() < 1e-12);
        // 32 KB at 0.03 mW/KB = 0.96 mW → 0.96 nJ per µs.
        assert!((one_us - 0.96).abs() < 1e-9);
    }

    #[test]
    fn tft_lookup_is_far_cheaper_than_l1_lookup() {
        let m = EnergyModel::new(SramModel::tsmc28_scaled_22nm());
        assert!(m.costs().tft_nj * 10.0 < m.l1_lookup_nj(32, 8, 4));
    }
}
