//! The SRAM latency/energy model (§III-B, Fig. 2b/2c, Table III).
//!
//! ## Calibration
//!
//! Latency (ns) is a table over capacity × associativity, shaped so that:
//!
//! * each associativity doubling costs +10–25 % at low-to-mid
//!   associativity, blowing up at 16–32 ways where "the synthesis tool
//!   aggressively tries to meet timing" (§III-B);
//! * ceiling the latency at 1.33 / 2.80 / 4.00 GHz reproduces **every
//!   cycle count in Table III**, for both the baseline full-set lookups
//!   (2/4/5, 5/9/13, 14/30/42 cycles) and the SEESAW partition lookups
//!   (1/2/3, 1/2/3, 2/3/4 cycles).
//!
//! Energy (nJ) per full lookup grows ×1.45 per associativity doubling
//! (Fig. 2c's 40–50 % steps). Partial (way-masked) lookups are priced with
//! a fixed-plus-per-way decomposition `E ∝ F + k·w` with `F = 2.14·w`,
//! which yields the paper's measured 39.43 % saving for a 4-of-8-way
//! SEESAW lookup, including its 0.41 % partition-mux overhead.

const SIZES_KB: [u64; 6] = [16, 32, 64, 128, 256, 512];
const ASSOCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Access latency in ns: `LATENCY_NS[size_idx][assoc_idx]`.
const LATENCY_NS: [[f64; 6]; 6] = [
    // 1      2     4     8     16     32   ways
    [0.50, 0.58, 0.70, 0.85, 1.60, 4.20],  // 16 KB
    [0.62, 0.72, 0.88, 1.20, 2.20, 5.60],  // 32 KB
    [0.80, 0.92, 1.10, 1.45, 3.10, 7.20],  // 64 KB
    [1.00, 1.15, 1.40, 1.90, 4.30, 10.45], // 128 KB
    [1.30, 1.50, 1.80, 2.50, 5.50, 13.00], // 256 KB
    [1.70, 1.95, 2.35, 3.20, 7.00, 16.50], // 512 KB
];

/// Full-set lookup energy in nJ: `ENERGY_NJ[size_idx][assoc_idx]`.
const ENERGY_NJ: [[f64; 6]; 6] = [
    [0.010, 0.015, 0.021, 0.031, 0.045, 0.065], // 16 KB
    [0.014, 0.020, 0.029, 0.042, 0.061, 0.089], // 32 KB
    [0.019, 0.028, 0.040, 0.058, 0.085, 0.123], // 64 KB
    [0.026, 0.038, 0.055, 0.080, 0.116, 0.169], // 128 KB
    [0.036, 0.052, 0.076, 0.110, 0.160, 0.232], // 256 KB
    [0.049, 0.071, 0.104, 0.151, 0.219, 0.319], // 512 KB
];

/// Fixed lookup overhead (decoders, drivers, muxes) expressed in units of
/// one way's tag+data energy. Solving `(F + 4w)/(F + 8w) = 1 − 0.3943`
/// (the paper's measured saving) gives `F ≈ 2.14 w`.
const FIXED_OVERHEAD_WAYS: f64 = 2.14;

/// SEESAW's partition mux/decoder adds 0.41 % to a partition lookup
/// (§IV-A4).
const SEESAW_PARTITION_OVERHEAD: f64 = 1.0041;

/// Extra wire/decoder latency (ns) of selecting among `p` partitions;
/// measurable only at 8+ partitions (Table III's 128 KB row).
fn partition_decoder_extra_ns(partitions: usize) -> f64 {
    match partitions {
        0..=4 => 0.0,
        8 => 0.15,
        _ => 0.30,
    }
}

/// The SRAM compiler model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Latency scale factor relative to the calibrated 22 nm tables.
    pub latency_scale: f64,
    /// Energy scale factor relative to the calibrated 22 nm tables.
    pub energy_scale: f64,
    /// L1 leakage power in mW per KB of capacity.
    pub leakage_mw_per_kb: f64,
}

impl SramModel {
    /// The paper's configuration: TSMC 28 nm numbers scaled to 22 nm
    /// "using standard scaling factors" (§V). The tables are already in
    /// 22 nm terms, so scale factors are 1.
    pub fn tsmc28_scaled_22nm() -> Self {
        Self {
            latency_scale: 1.0,
            energy_scale: 1.0,
            leakage_mw_per_kb: 0.03,
        }
    }

    /// A 14 nm projection: the paper reports absolute L1 access time
    /// dropping 17 % from Sandybridge (32 nm) to Skylake (14 nm) while
    /// "the relative trend between associativities remains the same".
    pub fn projected_14nm() -> Self {
        Self {
            latency_scale: 0.83,
            energy_scale: 0.70,
            leakage_mw_per_kb: 0.02,
        }
    }

    /// Access latency of a full `size_kb`-KB, `ways`-way lookup, in ns.
    ///
    /// # Panics
    /// Panics if `size_kb` or `ways` is zero.
    pub fn latency_ns(&self, size_kb: u64, ways: usize) -> f64 {
        self.latency_scale * interp_2d(&LATENCY_NS, size_kb, ways)
    }

    /// Energy of a full `size_kb`-KB, `ways`-way lookup, in nJ.
    pub fn energy_nj(&self, size_kb: u64, ways: usize) -> f64 {
        self.energy_scale * interp_2d(&ENERGY_NJ, size_kb, ways)
    }

    /// Energy of probing `ways_probed` of the `total_ways` in a
    /// `size_kb`-KB cache, in nJ. The fixed-plus-per-way decomposition
    /// reproduces the paper's 39.43 % saving for 4-of-8 ways.
    pub fn lookup_energy_nj(&self, size_kb: u64, total_ways: usize, ways_probed: usize) -> f64 {
        assert!(ways_probed <= total_ways, "cannot probe more ways than exist");
        if ways_probed == 0 {
            return 0.0;
        }
        let full = self.energy_nj(size_kb, total_ways);
        let f = FIXED_OVERHEAD_WAYS;
        let scale = (f + ways_probed as f64) / (f + total_ways as f64);
        let overhead = if ways_probed < total_ways {
            SEESAW_PARTITION_OVERHEAD
        } else {
            1.0
        };
        full * scale * overhead
    }

    /// Cycle count of a full-set lookup at `freq_ghz`, as the pipeline
    /// sees it (latency ceiled to whole cycles) — Table III's "L1
    /// base-page" column.
    pub fn full_lookup_cycles(&self, size_kb: u64, ways: usize, freq_ghz: f64) -> u64 {
        to_cycles(self.latency_ns(size_kb, ways), freq_ghz)
    }

    /// Cycle count of a SEESAW partition lookup: one `ways/partitions`-way
    /// probe of a `size_kb/partitions`-KB slice plus the partition
    /// decoder — Table III's "L1 superpage" column.
    ///
    /// # Panics
    /// Panics unless `partitions` divides both size and ways.
    pub fn partition_lookup_cycles(
        &self,
        size_kb: u64,
        ways: usize,
        partitions: usize,
        freq_ghz: f64,
    ) -> u64 {
        assert!(partitions > 0 && ways.is_multiple_of(partitions));
        assert!(size_kb.is_multiple_of(partitions as u64));
        let slice_kb = size_kb / partitions as u64;
        let slice_ways = ways / partitions;
        let ns = self.latency_ns(slice_kb, slice_ways)
            + self.latency_scale * partition_decoder_extra_ns(partitions);
        to_cycles(ns, freq_ghz)
    }

    /// L1 leakage power for a `size_kb`-KB cache, in mW.
    pub fn leakage_mw(&self, size_kb: u64) -> f64 {
        self.leakage_mw_per_kb * size_kb as f64
    }
}

fn to_cycles(latency_ns: f64, freq_ghz: f64) -> u64 {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    (latency_ns * freq_ghz).ceil().max(1.0) as u64
}

/// Log-space bilinear interpolation over the calibration tables, clamped
/// at the edges.
fn interp_2d(table: &[[f64; 6]; 6], size_kb: u64, ways: usize) -> f64 {
    assert!(size_kb > 0 && ways > 0, "size and ways must be positive");
    let (si, sf) = axis_pos(size_kb as f64, &SIZES_KB.map(|v| v as f64));
    let (ai, af) = axis_pos(ways as f64, &ASSOCS.map(|v| v as f64));
    let at = |s: usize, a: usize| table[s][a];
    let lo = at(si, ai) * (1.0 - af) + at(si, (ai + 1).min(5)) * af;
    let hi = at((si + 1).min(5), ai) * (1.0 - af) + at((si + 1).min(5), (ai + 1).min(5)) * af;
    lo * (1.0 - sf) + hi * sf
}

/// Returns `(index, fraction)` such that `value` sits `fraction` of the
/// way (in log2 space) between `axis[index]` and `axis[index + 1]`.
fn axis_pos(value: f64, axis: &[f64; 6]) -> (usize, f64) {
    if value <= axis[0] {
        return (0, 0.0);
    }
    if value >= axis[5] {
        return (5, 0.0);
    }
    for i in 0..5 {
        if value < axis[i + 1] {
            let f = (value.log2() - axis[i].log2()) / (axis[i + 1].log2() - axis[i].log2());
            return (i, f);
        }
    }
    (5, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREQS: [f64; 3] = [1.33, 2.80, 4.00];

    #[test]
    fn table_iii_baseline_cycles_reproduced() {
        let sram = SramModel::tsmc28_scaled_22nm();
        let expected = [
            (32u64, 8usize, [2u64, 4, 5]),
            (64, 16, [5, 9, 13]),
            (128, 32, [14, 30, 42]),
        ];
        for (size, ways, cycles) in expected {
            for (f, want) in FREQS.iter().zip(cycles) {
                assert_eq!(
                    sram.full_lookup_cycles(size, ways, *f),
                    want,
                    "{size}KB {ways}-way at {f} GHz"
                );
            }
        }
    }

    #[test]
    fn table_iii_superpage_cycles_reproduced() {
        let sram = SramModel::tsmc28_scaled_22nm();
        // (size, ways, partitions) → superpage lookup cycles per frequency.
        let expected = [
            (32u64, 8usize, 2usize, [1u64, 2, 3]),
            (64, 16, 4, [1, 2, 3]),
            (128, 32, 8, [2, 3, 4]),
        ];
        for (size, ways, parts, cycles) in expected {
            for (f, want) in FREQS.iter().zip(cycles) {
                assert_eq!(
                    sram.partition_lookup_cycles(size, ways, parts, *f),
                    want,
                    "{size}KB {ways}-way {parts} partitions at {f} GHz"
                );
            }
        }
    }

    #[test]
    fn latency_grows_10_to_25_percent_per_step_at_low_assoc() {
        let sram = SramModel::tsmc28_scaled_22nm();
        for size in [16u64, 32, 64, 128] {
            for (a, b) in [(1usize, 2usize), (2, 4), (4, 8)] {
                let ratio = sram.latency_ns(size, b) / sram.latency_ns(size, a);
                assert!(
                    (1.10..=1.40).contains(&ratio),
                    "{size}KB {a}→{b} ways grew ×{ratio:.3}"
                );
            }
        }
    }

    #[test]
    fn energy_grows_40_to_50_percent_per_step() {
        let sram = SramModel::tsmc28_scaled_22nm();
        for size in [16u64, 32, 64, 128, 256] {
            for (a, b) in [(1usize, 2), (2, 4), (4, 8), (8, 16), (16, 32)] {
                let ratio = sram.energy_nj(size, b) / sram.energy_nj(size, a);
                assert!(
                    (1.37..=1.53).contains(&ratio),
                    "{size}KB {a}→{b} ways energy ×{ratio:.3}"
                );
            }
        }
    }

    #[test]
    fn seesaw_partial_lookup_saves_39_percent() {
        let sram = SramModel::tsmc28_scaled_22nm();
        let full = sram.lookup_energy_nj(32, 8, 8);
        let part = sram.lookup_energy_nj(32, 8, 4);
        let saving = 1.0 - part / full;
        assert!(
            (0.390..=0.399).contains(&saving),
            "expected ≈39.43% saving, got {:.2}%",
            saving * 100.0
        );
        assert_eq!(full, sram.energy_nj(32, 8));
    }

    #[test]
    fn zero_ways_probed_is_free() {
        let sram = SramModel::tsmc28_scaled_22nm();
        assert_eq!(sram.lookup_energy_nj(32, 8, 0), 0.0);
    }

    #[test]
    fn interpolation_is_monotone() {
        let sram = SramModel::tsmc28_scaled_22nm();
        // Off-grid points fall between their neighbors.
        let mid = sram.latency_ns(48, 8);
        assert!(mid > sram.latency_ns(32, 8) && mid < sram.latency_ns(64, 8));
        let mid_e = sram.energy_nj(96, 6);
        assert!(mid_e > sram.energy_nj(64, 4) && mid_e < sram.energy_nj(128, 8));
    }

    #[test]
    fn out_of_range_clamps() {
        let sram = SramModel::tsmc28_scaled_22nm();
        assert_eq!(sram.latency_ns(8, 1), sram.latency_ns(16, 1));
        assert_eq!(sram.latency_ns(1024, 64), sram.latency_ns(512, 32));
    }

    #[test]
    fn newer_node_is_faster_with_same_trend() {
        let old = SramModel::tsmc28_scaled_22nm();
        let new = SramModel::projected_14nm();
        assert!(new.latency_ns(32, 8) < old.latency_ns(32, 8));
        let trend_old = old.latency_ns(32, 16) / old.latency_ns(32, 8);
        let trend_new = new.latency_ns(32, 16) / new.latency_ns(32, 8);
        assert!((trend_old - trend_new).abs() < 1e-9, "relative trend preserved");
    }

    #[test]
    fn leakage_scales_with_capacity() {
        let sram = SramModel::tsmc28_scaled_22nm();
        assert!((sram.leakage_mw(64) - 2.0 * sram.leakage_mw(32)).abs() < 1e-12);
    }
}
